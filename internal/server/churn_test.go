package server

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/transport"

	_ "repro/internal/baselines"
)

// churnPolicy keeps abandoned exchanges short so the storm finishes fast.
var churnPolicy = protocol.RetryPolicy{Timeout: 40 * time.Millisecond, MaxRetries: 4}

// patientPolicy is the well-behaved vehicles' retry budget. It must
// outlast the worst-case queue wait: with more concurrent dialers than
// workers, a conn can sit accepted-but-unserved behind dead peers that
// each pin a worker for the full hello timeout. Timeouts never fire on
// a clean localhost link, so the longer budget costs nothing when the
// server keeps up.
var patientPolicy = protocol.RetryPolicy{Timeout: 200 * time.Millisecond, MaxRetries: 9}

// snapshotMonotone asserts that no counter and no histogram count ever
// decreases between two snapshots — resolved sessions must only ever
// accumulate, whatever order workers finish in.
func snapshotMonotone(t *testing.T, prev, next obs.Snapshot) {
	t.Helper()
	for name, v := range prev.Counters {
		if next.Counters[name] < v {
			t.Errorf("counter %s went backwards: %d -> %d", name, v, next.Counters[name])
		}
	}
	for name, h := range prev.Histograms {
		if next.Histograms[name].Count < h.Count {
			t.Errorf("histogram %s count went backwards: %d -> %d", name, h.Count, next.Histograms[name].Count)
		}
	}
}

// TestServerChurn storms a TCP server with three interleaved populations
// — well-behaved vehicles, peers that connect and die silently, and
// vehicles that abort mid-session — and audits the session manager's
// accounting: every accepted connection resolves to exactly one outcome,
// no session is lost or double-counted, the active gauge returns to
// zero, obs counters climb monotonically, and no goroutine outlives the
// drain.
func TestServerChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second socket soak")
	}
	const (
		normal = 24
		dead   = 8
		aborts = 8
		conc   = 8
	)
	template := schemeTemplate(t, "lora-key")
	sc := loopbackScenario()

	baseline := runtime.NumGoroutine()

	reg := obs.NewRegistry()
	obs.DeclareStandard(reg)

	var mu sync.Mutex
	var results []Result
	perVehicle := make(map[uint64]int)
	cfg := Config{
		Template:       template,
		Scenario:       sc,
		Seed:           loopbackSeed,
		Workers:        4,
		Queue:          16,
		Retry:          churnPolicy,
		HelloTimeout:   500 * time.Millisecond,
		SessionTimeout: 15 * time.Second,
		Recorder:       reg,
		OnSession: func(r Result) {
			mu.Lock()
			results = append(results, r)
			if r.Session != "" {
				perVehicle[r.Vehicle]++
			}
			mu.Unlock()
		},
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()

	// Sample snapshots concurrently with the storm: monotonicity must
	// hold mid-flight, not just at the end.
	stopSampling := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		prev := reg.Snapshot()
		for {
			select {
			case <-stopSampling:
				return
			case <-time.After(20 * time.Millisecond):
			}
			next := reg.Snapshot()
			snapshotMonotone(t, prev, next)
			prev = next
		}
	}()

	// The storm: interleave the three populations over a worker pool so
	// joins and leaves overlap arbitrarily.
	type job struct {
		id   uint64
		kind int // 0 normal, 1 dead peer, 2 mid-session abort
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			clone := template.Clone()
			for j := range jobs {
				conn, err := transport.DialTCP(l.Addr().String())
				if err != nil {
					t.Errorf("dial: %v", err)
					continue
				}
				switch j.kind {
				case 0: // plays the whole session
					_, err := RunVehicle(conn, clone, sc, template.Cfg, loopbackSeed, Vehicle{ID: j.id, Windows: 4},
						protocol.WithRetryPolicy(patientPolicy))
					if err != nil {
						t.Errorf("vehicle %d: %v", j.id, err)
					}
				case 1: // connects and dies without a word
					time.Sleep(5 * time.Millisecond)
				case 2: // starts a session, then vanishes mid-protocol
					done := make(chan struct{})
					go func() {
						defer close(done)
						_, _ = RunVehicle(conn, clone, sc, template.Cfg, loopbackSeed, Vehicle{ID: j.id, Windows: 4},
							protocol.WithRetryPolicy(churnPolicy))
					}()
					time.Sleep(30 * time.Millisecond)
					_ = conn.Close()
					<-done
				}
				_ = conn.Close()
			}
		}()
	}
	dialed := 0
	for i := 0; i < normal; i++ {
		jobs <- job{id: uint64(i), kind: 0}
		dialed++
	}
	for i := 0; i < dead; i++ {
		jobs <- job{id: uint64(1000 + i), kind: 1}
		dialed++
	}
	for i := 0; i < aborts; i++ {
		jobs <- job{id: uint64(2000 + i), kind: 2}
		dialed++
	}
	close(jobs)
	wg.Wait()

	// Drain; every accepted connection must have resolved by the time
	// Close returns.
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	close(stopSampling)
	<-samplerDone

	mu.Lock()
	defer mu.Unlock()
	if len(results) != dialed {
		t.Fatalf("%d connections dialed but %d sessions resolved", dialed, len(results))
	}
	// No lost and no double-served sessions: every well-behaved vehicle
	// resolved exactly once under its own session name.
	for i := 0; i < normal; i++ {
		if n := perVehicle[uint64(i)]; n != 1 {
			t.Errorf("vehicle %d resolved %d times, want exactly 1", i, n)
		}
	}
	for _, r := range results {
		valid := false
		for _, o := range obs.ServerOutcomes {
			if r.Outcome == o {
				valid = true
			}
		}
		if !valid {
			t.Errorf("session %q resolved with unknown outcome %q", r.Session, r.Outcome)
		}
	}

	// The gauge and the counters must agree with the audit trail.
	if n := srv.ActiveSessions(); n != 0 {
		t.Fatalf("%d sessions still active after Close", n)
	}
	snap := reg.Snapshot()
	if g := snap.Gauges[obs.ServerActiveSessions]; g != 0 {
		t.Fatalf("active-session gauge = %v after drain", g)
	}
	var counted int64
	for _, o := range obs.ServerOutcomes {
		counted += snap.Counters[obs.Labeled(obs.ServerSessions, "outcome", o)]
	}
	if counted != int64(dialed) {
		t.Fatalf("outcome counters sum to %d, want %d", counted, dialed)
	}
	if c := snap.Histograms[obs.ServerSessionSeconds].Count; c != int64(dialed) {
		t.Fatalf("session-latency histogram holds %d observations, want %d", c, dialed)
	}

	// Serving after Close must fail cleanly, not hang or accept.
	if err := srv.Serve(l); err != ErrServerClosed {
		t.Fatalf("Serve after Close = %v, want ErrServerClosed", err)
	}

	// No goroutine outlives the drain (workers, accept loops, watchdogs,
	// sessions). Allow scheduler lag and unrelated runtime goroutines a
	// moment to park.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d at start, %d after drain\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerRejectsOversizedHello pins the serving-policy cap: a hello
// asking for more windows than Config.MaxWindows is rejected before any
// simulation work happens.
func TestServerRejectsOversizedHello(t *testing.T) {
	if testing.Short() {
		t.Skip("socket test")
	}
	template := schemeTemplate(t, "lora-key")
	var mu sync.Mutex
	var got []Result
	srv, err := New(Config{
		Template:   template,
		Scenario:   loopbackScenario(),
		Seed:       loopbackSeed,
		Workers:    1,
		MaxWindows: 4,
		Retry:      churnPolicy,
		OnSession: func(r Result) {
			mu.Lock()
			got = append(got, r)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer func() { _ = srv.Close() }()

	conn, err := transport.DialTCP(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// Greedy hello: 8 windows against a cap of 4. The protocol run then
	// times out quickly on the closed server side.
	_, _ = RunVehicle(conn, template.Clone(), loopbackScenario(), template.Cfg, loopbackSeed,
		Vehicle{ID: 9, Windows: 8}, protocol.WithRetryPolicy(protocol.RetryPolicy{Timeout: 20 * time.Millisecond, MaxRetries: 1}))
	_ = conn.Close()
	_ = srv.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("resolved %d sessions, want 1", len(got))
	}
	if got[0].Outcome != obs.OutcomeRejected || got[0].Err == nil {
		t.Fatalf("oversized hello resolved as %q (err=%v), want rejected", got[0].Outcome, got[0].Err)
	}
	if got[0].Vehicle != 9 {
		t.Fatalf("rejected session recorded vehicle %d", got[0].Vehicle)
	}
}
