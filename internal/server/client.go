package server

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Vehicle identifies one simulated vehicle driving a session against a
// key server.
type Vehicle struct {
	// ID selects the vehicle's channel realization; both endpoints derive
	// the session windows from it (see SessionWindows).
	ID uint64
	// Windows is how many probing windows the session runs.
	Windows int
	// Session is the protocol session identifier; empty derives a
	// canonical one from ID.
	Session string
	// HelloCopies is the hello redundancy (≥ 1). Keep 1 on TCP; use 3-4
	// over lossy UDP so a dropped hello does not strand the session.
	HelloCopies int
}

// SessionName is the canonical session identifier for a vehicle ID.
func SessionName(id uint64) string { return fmt.Sprintf("vk/vehicle/%d", id) }

// RunVehicle drives one vehicle's side of a key-establishment session
// over conn: it derives the vehicle's measurement windows, announces the
// hello, and runs the protocol's Bob role with the given scheme. It is
// the client half of the serving layer — vkload and the loopback tests
// both build on it. The caller owns conn and closes it afterwards.
//
// sys must be (a clone of) the same trained scheme instance the server
// shards, and sc/cfg/seed must match the server's configuration — that
// shared derivation stands in for the two radios probing one physical
// channel, exactly as cmd/vkproto does across processes.
func RunVehicle(conn transport.Conn, sys pipeline.Scheme, sc trace.Scenario, cfg core.Config, seed int64, v Vehicle, opts ...protocol.Option) ([]protocol.KeyOutcome, error) {
	if v.Windows <= 0 {
		v.Windows = 8
	}
	// Announce before deriving: the hello needs nothing from the window
	// derivation, and the derivation is real simulation work. Sending
	// first keeps the server's handshake deadline from burning down while
	// this side computes, and lets both endpoints derive in parallel.
	if err := sendHello(conn, &v); err != nil {
		return nil, err
	}
	_, bobWin, err := SessionWindows(sc, cfg, seed, v.ID, v.Windows)
	if err != nil {
		return nil, err
	}
	node := protocol.NewNode(sys, conn, v.Session, opts...)
	return node.RunBob(bobWin)
}

// RunVehicleWindows is RunVehicle for a caller that already holds the
// vehicle's Bob-side windows (a reconnecting client, or a load generator
// reusing one derivation across sessions — the client-side mirror of the
// server's window cache). bobWin must come from SessionWindows with the
// scenario/config/seed the server was configured with; v.Windows is
// overridden to len(bobWin) so the announcement always matches.
func RunVehicleWindows(conn transport.Conn, sys pipeline.Scheme, bobWin [][]float64, v Vehicle, opts ...protocol.Option) ([]protocol.KeyOutcome, error) {
	if len(bobWin) == 0 {
		return nil, fmt.Errorf("server: vehicle %d: no windows", v.ID)
	}
	v.Windows = len(bobWin)
	if err := sendHello(conn, &v); err != nil {
		return nil, err
	}
	node := protocol.NewNode(sys, conn, v.Session, opts...)
	return node.RunBob(bobWin)
}

// sendHello completes v's defaults and announces the session.
func sendHello(conn transport.Conn, v *Vehicle) error {
	if v.Session == "" {
		v.Session = SessionName(v.ID)
	}
	if v.HelloCopies < 1 {
		v.HelloCopies = 1
	}
	hello, err := encodeHello(Hello{Vehicle: v.ID, Windows: v.Windows, Session: v.Session})
	if err != nil {
		return err
	}
	for i := 0; i < v.HelloCopies; i++ {
		if err := conn.Send(hello); err != nil {
			return fmt.Errorf("server: hello: %w", err)
		}
	}
	return nil
}
