package server

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/transport"

	_ "repro/internal/baselines"
)

// benchRetry keeps retransmission out of the measured path on loopback.
var benchRetry = protocol.RetryPolicy{Timeout: 200 * time.Millisecond, MaxRetries: 9}

// benchServer starts a TCP-serving session manager for benchmarks.
func benchServer(b *testing.B) (*Server, transport.Listener) {
	b.Helper()
	template := schemeTemplate(b, "lora-key")
	srv, err := New(Config{
		Template:       template,
		Scenario:       loopbackScenario(),
		Seed:           loopbackSeed,
		Workers:        2,
		Retry:          benchRetry,
		HelloTimeout:   10 * time.Second,
		SessionTimeout: time.Minute,
	})
	if err != nil {
		b.Fatal(err)
	}
	l, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	return srv, l
}

// BenchmarkServerSession measures one full serving-layer session over a
// real localhost TCP socket: dial, hello handshake, window derivation,
// and the protocol exchange, end to end. lora-key keeps the scheme cost
// flat (no training, no predictor), so the number tracks the serving
// layer itself. CI's bench-smoke job records both rows per PR alongside
// the scheme benchmarks.
//
// cold uses a distinct vehicle ID per iteration, so every session pays
// the full per-vehicle channel-simulation cost on both endpoints (the
// pre-cache serving path). warm reconnects one vehicle with both sides'
// windows already derived — the server's from its window cache, the
// client's held by the caller via RunVehicleWindows — which is the
// steady-state shape of a fleet of returning vehicles.
func BenchmarkServerSession(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		srv, l := benchServer(b)
		defer func() { _ = srv.Close() }()
		clone := schemeTemplate(b, "lora-key").Clone()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			conn, err := transport.DialTCP(l.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := RunVehicle(conn, clone, loopbackScenario(), schemeTemplate(b, "lora-key").Cfg, loopbackSeed,
				Vehicle{ID: uint64(i), Windows: 4},
				protocol.WithRetryPolicy(benchRetry)); err != nil {
				b.Fatalf("vehicle %d: %v", i, err)
			}
			_ = conn.Close()
		}
		b.StopTimer()
	})

	b.Run("warm", func(b *testing.B) {
		srv, l := benchServer(b)
		defer func() { _ = srv.Close() }()
		template := schemeTemplate(b, "lora-key")
		clone := template.Clone()
		const vehicle = 7
		_, bobWin, err := SessionWindows(loopbackScenario(), template.Cfg, loopbackSeed, vehicle, 4)
		if err != nil {
			b.Fatal(err)
		}
		// Prime the server's window cache so the timed loop measures the
		// reconnect path, not the first derivation.
		if err := runWarm(l, clone, bobWin, vehicle); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := runWarm(l, clone, bobWin, vehicle); err != nil {
				b.Fatalf("iteration %d: %v", i, err)
			}
		}
		b.StopTimer()
	})
}

// runWarm drives one reconnect session from pre-derived client windows.
func runWarm(l transport.Listener, clone *core.System, bobWin [][]float64, vehicle uint64) error {
	conn, err := transport.DialTCP(l.Addr().String())
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()
	_, err = RunVehicleWindows(conn, clone, bobWin,
		Vehicle{ID: vehicle}, protocol.WithRetryPolicy(benchRetry))
	return err
}
