package server

import (
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/transport"

	_ "repro/internal/baselines"
)

// BenchmarkServerSession measures one full serving-layer session over a
// real localhost TCP socket: dial, hello handshake, per-session window
// derivation on both endpoints, and the protocol exchange, end to end.
// lora-key keeps the scheme cost flat (no training, no predictor), so
// the number tracks the serving layer itself. CI's bench-smoke job
// records the row per PR alongside the scheme benchmarks.
func BenchmarkServerSession(b *testing.B) {
	template := schemeTemplate(b, "lora-key")
	sc := loopbackScenario()
	srv, err := New(Config{
		Template:       template,
		Scenario:       sc,
		Seed:           loopbackSeed,
		Workers:        2,
		Retry:          protocol.RetryPolicy{Timeout: 200 * time.Millisecond, MaxRetries: 9},
		HelloTimeout:   10 * time.Second,
		SessionTimeout: time.Minute,
	})
	if err != nil {
		b.Fatal(err)
	}
	l, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	clone := template.Clone()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := transport.DialTCP(l.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RunVehicle(conn, clone, sc, template.Cfg, loopbackSeed,
			Vehicle{ID: uint64(i), Windows: 4},
			protocol.WithRetryPolicy(protocol.RetryPolicy{Timeout: 200 * time.Millisecond, MaxRetries: 9})); err != nil {
			b.Fatalf("vehicle %d: %v", i, err)
		}
		_ = conn.Close()
	}
	b.StopTimer()
	_ = srv.Close()
}
