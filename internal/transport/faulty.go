// Deterministic fault injection for transport connections.
//
// LoRa links drop, duplicate, reorder, and corrupt frames as a matter of
// course; the related simulator literature (LoRa CAD/capture-effect
// emulators, SDR key-generation testbeds) treats these as first-class
// simulation inputs. FaultyConn brings the same fault model to any Conn:
// every fault decision is drawn from a seeded rng.Source on the sender
// side, so a fixed seed yields a fixed fault schedule for a fixed message
// sequence — tests replay the exact same loss pattern every run.
package transport

import (
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

// Fault-outcome metric names, baked once per kind (see obs.FaultKinds).
var (
	faultDropped    = obs.Labeled(obs.TransportFaults, "kind", "dropped")
	faultDuplicated = obs.Labeled(obs.TransportFaults, "kind", "duplicated")
	faultReordered  = obs.Labeled(obs.TransportFaults, "kind", "reordered")
	faultCorrupted  = obs.Labeled(obs.TransportFaults, "kind", "corrupted")
	faultDelayed    = obs.Labeled(obs.TransportFaults, "kind", "delayed")
	faultDelivered  = obs.Labeled(obs.TransportFaults, "kind", "delivered")
)

// FaultConfig sets independent per-message fault probabilities. The zero
// value injects nothing.
type FaultConfig struct {
	// Drop is the probability a message vanishes on the wire.
	Drop float64
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Reorder is the probability a message is held back and delivered
	// after the next one (adjacent swap), modeling out-of-order arrival.
	Reorder float64
	// Corrupt is the probability a message has bytes flipped in flight.
	Corrupt float64
	// Delay is the probability a message is deferred by a uniform time in
	// (0, MaxDelay] before transmission.
	Delay float64
	// MaxDelay bounds injected delays; it defaults to 5ms when Delay > 0.
	MaxDelay time.Duration
}

// Enabled reports whether the config injects any fault at all.
func (c FaultConfig) Enabled() bool {
	return c.Drop > 0 || c.Duplicate > 0 || c.Reorder > 0 || c.Corrupt > 0 || c.Delay > 0
}

// FaultStats counts what the injector did to the traffic that flowed
// through one direction.
type FaultStats struct {
	Sent       int // messages handed to Send
	Delivered  int // messages actually written to the inner conn
	Dropped    int
	Duplicated int
	Reordered  int
	Corrupted  int
	Delayed    int
	Received   int // messages read from the inner conn
}

// FaultyConn wraps a Conn and injects faults on the egress path. Wrap
// both ends (with independently derived sources) to fault both
// directions. It is safe for concurrent use.
type FaultyConn struct {
	inner Conn
	cfg   FaultConfig

	mu    sync.Mutex
	src   *rng.Source
	held  []byte // message deferred by a reorder fault
	stats FaultStats
	rec   obs.Recorder
}

// SetRecorder routes the injector's fault outcomes into r as
// vk_transport_faults_total{kind=...} counters. Call it before traffic
// flows; the field is then read under the same mutex as the schedule.
func (c *FaultyConn) SetRecorder(r obs.Recorder) {
	c.mu.Lock()
	c.rec = obs.OrNop(r)
	c.mu.Unlock()
}

// WrapFaulty wraps conn with the given fault model. The source must be
// dedicated to this wrapper (rng.Source is not safe for sharing across
// goroutines); derive one per direction.
func WrapFaulty(conn Conn, cfg FaultConfig, src *rng.Source) *FaultyConn {
	if cfg.Delay > 0 && cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 5 * time.Millisecond
	}
	return &FaultyConn{inner: conn, cfg: cfg, src: src}
}

// FaultyPair returns an in-memory pair with both directions faulted under
// cfg, each from its own source derived from src.
func FaultyPair(cfg FaultConfig, src *rng.Source) (*FaultyConn, *FaultyConn) {
	a, b := Pair()
	return WrapFaulty(a, cfg, src.Derive("faulty-a")), WrapFaulty(b, cfg, src.Derive("faulty-b"))
}

// Stats returns a snapshot of the injector's counters.
func (c *FaultyConn) Stats() FaultStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Send implements Conn, applying the fault schedule to the outgoing
// message. Fault draws happen in Send-call order, so a single-goroutine
// sender gets a fully deterministic schedule from the seed.
func (c *FaultyConn) Send(msg []byte) error {
	c.mu.Lock()
	rec := c.rec
	if rec == nil {
		rec = obs.Nop
	}
	c.stats.Sent++
	// Take any message held by an earlier reorder fault: it is released
	// on this transmission event, after the current message.
	prev := c.held
	c.held = nil

	var now [][]byte
	var delay time.Duration
	if c.src.Bernoulli(c.cfg.Drop) {
		c.stats.Dropped++
		rec.Add(faultDropped, 1)
	} else {
		cp := make([]byte, len(msg))
		copy(cp, msg)
		if len(cp) > 0 && c.src.Bernoulli(c.cfg.Corrupt) {
			c.stats.Corrupted++
			rec.Add(faultCorrupted, 1)
			// Flip a burst of 1-4 bytes at a random offset.
			n := 1 + c.src.Intn(4)
			at := c.src.Intn(len(cp))
			for i := 0; i < n && at+i < len(cp); i++ {
				cp[at+i] ^= byte(1 + c.src.Intn(255))
			}
		}
		if c.src.Bernoulli(c.cfg.Reorder) && prev == nil {
			c.stats.Reordered++
			rec.Add(faultReordered, 1)
			c.held = cp
		} else {
			now = append(now, cp)
			if c.src.Bernoulli(c.cfg.Duplicate) {
				c.stats.Duplicated++
				rec.Add(faultDuplicated, 1)
				dup := make([]byte, len(cp))
				copy(dup, cp)
				now = append(now, dup)
			}
		}
		if len(now) > 0 && c.src.Bernoulli(c.cfg.Delay) {
			c.stats.Delayed++
			rec.Add(faultDelayed, 1)
			delay = time.Duration(c.src.Uniform(0, float64(c.cfg.MaxDelay))) + time.Microsecond
		}
	}
	if prev != nil {
		now = append(now, prev)
	}
	c.stats.Delivered += len(now)
	rec.Add(faultDelivered, int64(len(now)))
	c.mu.Unlock()

	if delay > 0 {
		batch := now
		time.AfterFunc(delay, func() {
			for _, m := range batch {
				// The conn may have closed while the delay ran; a late
				// datagram simply disappears, like on a real link.
				_ = c.inner.Send(m)
			}
		})
		return nil
	}
	for _, m := range now {
		if err := c.inner.Send(m); err != nil {
			return err
		}
	}
	return nil
}

// Recv implements Conn.
func (c *FaultyConn) Recv() ([]byte, error) {
	msg, err := c.inner.Recv()
	if err == nil {
		c.mu.Lock()
		c.stats.Received++
		c.mu.Unlock()
	}
	return msg, err
}

// RecvTimeout implements Conn.
func (c *FaultyConn) RecvTimeout(d time.Duration) ([]byte, error) {
	msg, err := c.inner.RecvTimeout(d)
	if err == nil {
		c.mu.Lock()
		c.stats.Received++
		c.mu.Unlock()
	}
	return msg, err
}

// Close implements Conn, flushing a reorder-held message first so the
// last message of a session cannot be silently starved.
func (c *FaultyConn) Close() error {
	c.mu.Lock()
	held := c.held
	c.held = nil
	c.mu.Unlock()
	if held != nil {
		_ = c.inner.Send(held)
	}
	return c.inner.Close()
}
