package transport

import "testing"

// InProcessQueueLen reaches into the concrete in-process queue of a Conn
// (white-box), so the shared contract's drain check can wait until
// messages are demonstrably buffered without racing the delivery path.
// Only visible to this package's tests.
func InProcessQueueLen(t *testing.T, c Conn) int {
	t.Helper()
	switch cc := c.(type) {
	case *memConn:
		return len(cc.in)
	case *muxConn:
		return len(cc.in)
	default:
		t.Fatalf("InProcessQueueLen: %T does not queue in process", c)
		return 0
	}
}
