package transport

import (
	"bytes"
	"testing"
	"time"
)

func TestPairRoundTrip(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	msg := []byte("hello")
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	// The other direction too.
	if err := b.Send([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if got, err := a.Recv(); err != nil || string(got) != "back" {
		t.Fatalf("got %q err %v", got, err)
	}
}

func TestPairCopiesPayload(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	msg := []byte("mutate-me")
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	msg[0] = 'X'
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "mutate-me" {
		t.Fatalf("payload aliased sender buffer: %q", got)
	}
}

func TestPairClose(t *testing.T) {
	a, b := Pair()
	a.Close()
	if err := b.Send([]byte("x")); err == nil {
		// Buffered channel may accept; Recv after close must fail fast.
		if _, err := b.Recv(); err == nil {
			t.Fatal("recv on closed pair should fail")
		}
	}
}

func TestUDPRoundTrip(t *testing.T) {
	server, err := DialUDP("127.0.0.1:0", "127.0.0.1:9")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := DialUDP("127.0.0.1:0", server.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	peer, err := ResolvePeer(client.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	server.SetPeer(peer)
	server.SetTimeout(2 * time.Second)
	client.SetTimeout(2 * time.Second)

	if err := client.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping" {
		t.Fatalf("got %q", got)
	}
	if err := server.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if got, err := client.Recv(); err != nil || string(got) != "pong" {
		t.Fatalf("got %q err %v", got, err)
	}
}

func TestUDPTimeout(t *testing.T) {
	c, err := DialUDP("127.0.0.1:0", "127.0.0.1:9")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(50 * time.Millisecond)
	if _, err := c.Recv(); err == nil {
		t.Fatal("expected timeout")
	}
}
