package transport

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestPairRoundTrip(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	msg := []byte("hello")
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	// The other direction too.
	if err := b.Send([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if got, err := a.Recv(); err != nil || string(got) != "back" {
		t.Fatalf("got %q err %v", got, err)
	}
}

func TestPairCopiesPayload(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	msg := []byte("mutate-me")
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	msg[0] = 'X'
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "mutate-me" {
		t.Fatalf("payload aliased sender buffer: %q", got)
	}
}

func TestPairClose(t *testing.T) {
	a, b := Pair()
	a.Close()
	if err := b.Send([]byte("x")); err == nil {
		t.Fatal("send after close must fail deterministically")
	}
	if _, err := b.Recv(); err == nil {
		t.Fatal("recv on closed pair should fail")
	}
}

func TestPairCloseDrainsQueued(t *testing.T) {
	// Regression: messages queued before Close must all be delivered, not
	// just the first one, before Recv reports closure.
	a, b := Pair()
	for i := 0; i < 3; i++ {
		if err := a.Send([]byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	for i := 0; i < 3; i++ {
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("message %d after close: %v", i, err)
		}
		if want := byte('a' + i); len(got) != 1 || got[0] != want {
			t.Fatalf("message %d: got %q want %q", i, got, want)
		}
	}
	if _, err := b.Recv(); err == nil {
		t.Fatal("drained pair must report closure")
	}
	// RecvTimeout must honor the same drain-then-close contract.
	a2, b2 := Pair()
	a2.Send([]byte("last"))
	a2.Close()
	if got, err := b2.RecvTimeout(time.Second); err != nil || string(got) != "last" {
		t.Fatalf("RecvTimeout drain: got %q err %v", got, err)
	}
	if _, err := b2.RecvTimeout(time.Second); err == nil {
		t.Fatal("drained pair must report closure via RecvTimeout")
	}
}

func TestPairRecvTimeout(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	if _, err := b.RecvTimeout(5 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("empty pair: want ErrTimeout, got %v", err)
	}
	if err := a.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if got, err := b.RecvTimeout(time.Second); err != nil || string(got) != "x" {
		t.Fatalf("got %q err %v", got, err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	server, err := DialUDP("127.0.0.1:0", "127.0.0.1:9")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := DialUDP("127.0.0.1:0", server.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	peer, err := ResolvePeer(client.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	server.SetPeer(peer)
	server.SetTimeout(2 * time.Second)
	client.SetTimeout(2 * time.Second)

	if err := client.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping" {
		t.Fatalf("got %q", got)
	}
	if err := server.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if got, err := client.Recv(); err != nil || string(got) != "pong" {
		t.Fatalf("got %q err %v", got, err)
	}
}

func TestUDPTimeout(t *testing.T) {
	c, err := DialUDP("127.0.0.1:0", "127.0.0.1:9")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(50 * time.Millisecond)
	if _, err := c.Recv(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if _, err := c.RecvTimeout(10 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestUDPClosedMapsToErrClosed(t *testing.T) {
	c, err := DialUDP("127.0.0.1:0", "127.0.0.1:9")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.RecvTimeout(10 * time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := c.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send: want ErrClosed, got %v", err)
	}
}
