package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"testing"
	"time"
)

// tcpPair dials through a real loopback listener and returns both framed
// ends plus the raw server-side net.Conn for byte-level poking.
func tcpPair(t *testing.T) (client *TCPConn, server *TCPConn) {
	t.Helper()
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer func() { _ = l.Close() }()
	type res struct {
		c   Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	client, err = DialTCP(l.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("accept: %v", r.err)
	}
	return client, r.c.(*TCPConn)
}

// TestTCPPartialFrameSurvivesDeadline drips one frame across a deadline
// expiry: the bytes read before the timeout must stay buffered so the
// next RecvTimeout resumes mid-frame instead of desynchronizing the
// stream. net.Pipe gives byte-exact control over what is on the wire.
func TestTCPPartialFrameSurvivesDeadline(t *testing.T) {
	raw, peer := net.Pipe()
	tc := NewTCPConn(raw)
	defer func() { _ = tc.Close(); _ = peer.Close() }()

	frame, err := AppendFrame(nil, []byte("split-frame-payload"))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	cut := frameHeaderLen + 3 // header plus a sliver of payload
	go func() { _, _ = peer.Write(frame[:cut]) }()

	if _, err := tc.RecvTimeout(80 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("partial-frame recv = %v, want ErrTimeout", err)
	}
	go func() { _, _ = peer.Write(frame[cut:]) }()
	got, err := tc.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatalf("resumed recv: %v", err)
	}
	if string(got) != "split-frame-payload" {
		t.Fatalf("resumed recv = %q", got)
	}
}

// TestTCPCoalescedFrames: several frames arriving in one segment decode
// one message per Recv, in order.
func TestTCPCoalescedFrames(t *testing.T) {
	raw, peer := net.Pipe()
	tc := NewTCPConn(raw)
	defer func() { _ = tc.Close(); _ = peer.Close() }()

	var wire []byte
	for i := 0; i < 3; i++ {
		var err error
		wire, err = AppendFrame(wire, []byte(fmt.Sprintf("msg-%d", i)))
		if err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	go func() { _, _ = peer.Write(wire) }()
	for i := 0; i < 3; i++ {
		got, err := tc.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if want := fmt.Sprintf("msg-%d", i); string(got) != want {
			t.Fatalf("recv %d = %q, want %q", i, got, want)
		}
	}
}

// TestTCPPoisonedStreamCRC: a frame whose CRC does not match its payload
// kills the connection — a byte stream cannot resynchronize past a bad
// frame, so pretending otherwise would deliver garbage.
func TestTCPPoisonedStreamCRC(t *testing.T) {
	raw, peer := net.Pipe()
	tc := NewTCPConn(raw)
	defer func() { _ = tc.Close(); _ = peer.Close() }()

	payload := []byte("corrupt-me")
	bad := make([]byte, frameHeaderLen+len(payload))
	binary.BigEndian.PutUint32(bad[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(bad[4:8], crc32.ChecksumIEEE(payload)^0xdeadbeef)
	copy(bad[frameHeaderLen:], payload)
	go func() { _, _ = peer.Write(bad) }()

	if _, err := tc.RecvTimeout(2 * time.Second); !errors.Is(err, ErrFrame) {
		t.Fatalf("corrupt recv = %v, want ErrFrame", err)
	}
	// The conn poisoned itself: every later operation reports ErrClosed.
	if err := tc.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after poison = %v, want ErrClosed", err)
	}
	if _, err := tc.RecvTimeout(50 * time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after poison = %v, want ErrClosed", err)
	}
}

// TestTCPPoisonedStreamOversize: a header declaring a frame beyond
// MaxFrameBytes is rejected before any allocation and poisons the conn.
func TestTCPPoisonedStreamOversize(t *testing.T) {
	raw, peer := net.Pipe()
	tc := NewTCPConn(raw)
	defer func() { _ = tc.Close(); _ = peer.Close() }()

	hdr := make([]byte, frameHeaderLen)
	binary.BigEndian.PutUint32(hdr[:4], uint32(MaxFrameBytes+1))
	go func() { _, _ = peer.Write(hdr) }()

	if _, err := tc.RecvTimeout(2 * time.Second); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversize recv = %v, want ErrFrame", err)
	}
	if err := tc.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after poison = %v, want ErrClosed", err)
	}
}

// TestTCPConcurrentSenders: frames from concurrent senders never
// interleave — every received message is intact (the CRC layer would
// reject a spliced frame, and the payload set must match exactly).
func TestTCPConcurrentSenders(t *testing.T) {
	client, server := tcpPair(t)
	defer func() { _ = client.Close(); _ = server.Close() }()

	const senders, perSender = 4, 25
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				msg := bytes.Repeat([]byte{byte(s)}, 100+i)
				if err := client.Send(msg); err != nil {
					t.Errorf("send s=%d i=%d: %v", s, i, err)
					return
				}
			}
		}(s)
	}

	counts := make(map[byte]int)
	for n := 0; n < senders*perSender; n++ {
		got, err := server.RecvTimeout(5 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", n, err)
		}
		if len(got) < 100 || len(got) > 100+perSender-1 {
			t.Fatalf("recv %d: unexpected length %d", n, len(got))
		}
		for _, b := range got[1:] {
			if b != got[0] {
				t.Fatalf("recv %d: spliced frame %v...", n, got[:8])
			}
		}
		counts[got[0]]++
	}
	wg.Wait()
	for s := 0; s < senders; s++ {
		if counts[byte(s)] != perSender {
			t.Fatalf("sender %d: got %d/%d frames", s, counts[byte(s)], perSender)
		}
	}
}

// TestTCPRemoteCloseSurfacesErrClosed: the peer closing its socket must
// end a blocked receive with ErrClosed (EOF folds into the sentinel),
// and sends eventually fail the same way once the kernel notices.
func TestTCPRemoteCloseSurfacesErrClosed(t *testing.T) {
	client, server := tcpPair(t)
	defer func() { _ = client.Close() }()

	if err := server.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
	if _, err := client.RecvTimeout(2 * time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after peer close = %v, want ErrClosed", err)
	}
	// Sends land in kernel buffers until the RST propagates; keep writing
	// until the failure surfaces, then check its shape.
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := client.Send(bytes.Repeat([]byte("x"), 4096))
		if err != nil {
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("send after peer close = %v, want ErrClosed", err)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("sends kept succeeding after peer close")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTCPListenerClosed: Accept on a closed listener reports ErrClosed,
// and closing twice is a no-op.
func TestTCPListenerClosed(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Fatalf("accept on closed = %v, want ErrClosed", err)
	}
}
