// Package transport provides the message channels the key-establishment
// protocol runs over: an in-memory pair for simulation and tests, and a
// UDP pair for running the two protocol ends as real processes.
package transport

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// Conn is a reliable, message-oriented, bidirectional channel.
type Conn interface {
	Send(msg []byte) error
	Recv() ([]byte, error)
	Close() error
}

// ErrClosed reports use of a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// Pair returns two in-memory connection ends wired to each other.
func Pair() (Conn, Conn) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	done := make(chan struct{})
	a := &memConn{out: ab, in: ba, done: done}
	b := &memConn{out: ba, in: ab, done: done}
	return a, b
}

type memConn struct {
	out  chan []byte
	in   chan []byte
	done chan struct{}
}

func (c *memConn) Send(msg []byte) error {
	cp := make([]byte, len(msg))
	copy(cp, msg)
	select {
	case c.out <- cp:
		return nil
	case <-c.done:
		return ErrClosed
	}
}

func (c *memConn) Recv() ([]byte, error) {
	select {
	case msg, ok := <-c.in:
		if !ok {
			return nil, ErrClosed
		}
		return msg, nil
	case <-c.done:
		// Closing must not drop messages already queued: drain before
		// reporting closure, so a peer that sent its final message and
		// immediately closed still gets it delivered.
		select {
		case msg, ok := <-c.in:
			if ok {
				return msg, nil
			}
		default:
		}
		return nil, ErrClosed
	}
}

func (c *memConn) Close() error {
	select {
	case <-c.done:
	default:
		close(c.done)
	}
	return nil
}

// UDPConn is a datagram transport to one fixed peer. LoRa control traffic
// is tiny and loss-tolerant at the protocol layer (rounds simply retry),
// so plain UDP matches the deployment model.
type UDPConn struct {
	conn    *net.UDPConn
	peer    *net.UDPAddr
	timeout time.Duration
}

// DialUDP binds local and targets peer, e.g. DialUDP(":0", "127.0.0.1:9000").
func DialUDP(local, peer string) (*UDPConn, error) {
	laddr, err := net.ResolveUDPAddr("udp", local)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	paddr, err := net.ResolveUDPAddr("udp", peer)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return &UDPConn{conn: conn, peer: paddr, timeout: 5 * time.Second}, nil
}

// LocalAddr exposes the bound address (useful with ":0").
func (c *UDPConn) LocalAddr() net.Addr { return c.conn.LocalAddr() }

// SetPeer retargets the connection (a listener learns its peer from the
// first datagram).
func (c *UDPConn) SetPeer(addr *net.UDPAddr) { c.peer = addr }

// ResolvePeer resolves a host:port string into a UDP address for SetPeer.
func ResolvePeer(addr string) (*net.UDPAddr, error) {
	out, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return out, nil
}

// SetTimeout adjusts the receive deadline.
func (c *UDPConn) SetTimeout(d time.Duration) { c.timeout = d }

// Send implements Conn.
func (c *UDPConn) Send(msg []byte) error {
	_, err := c.conn.WriteToUDP(msg, c.peer)
	return err
}

// Recv implements Conn. The first sender becomes the peer if none is set.
func (c *UDPConn) Recv() ([]byte, error) {
	if err := c.conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
		return nil, err
	}
	buf := make([]byte, 64*1024)
	n, addr, err := c.conn.ReadFromUDP(buf)
	if err != nil {
		return nil, err
	}
	if c.peer == nil {
		c.peer = addr
	}
	return buf[:n], nil
}

// Close implements Conn.
func (c *UDPConn) Close() error { return c.conn.Close() }
