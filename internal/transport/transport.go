// Package transport provides the message channels the key-establishment
// protocol runs over: an in-memory pair for simulation and tests, a UDP
// pair for running the two protocol ends as real processes, and a
// deterministic fault-injecting wrapper (see faulty.go) that models lossy
// LoRa links.
package transport

import (
	"errors"
	"fmt"
	"net"
	"os"
	"time"
)

// Conn is a message-oriented, bidirectional channel. Delivery is NOT
// guaranteed reliable: the UDP transport drops under congestion and the
// faulty wrapper drops by design, so the protocol layer owns retries.
type Conn interface {
	Send(msg []byte) error
	Recv() ([]byte, error)
	// RecvTimeout waits at most d for the next message and returns
	// ErrTimeout when nothing arrives in time. The protocol's retransmit
	// logic is built on this.
	RecvTimeout(d time.Duration) ([]byte, error)
	Close() error
}

// Listener accepts inbound Conns for the serving layer: the framed TCP
// listener and the UDP mux both implement it, so a server binds either
// with the same code. Accept on a closed listener reports ErrClosed.
type Listener interface {
	Accept() (Conn, error)
	Addr() net.Addr
	Close() error
}

// ErrClosed reports use of a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// ErrTimeout reports that no message arrived within the receive deadline.
var ErrTimeout = errors.New("transport: receive timeout")

// Pair returns two in-memory connection ends wired to each other.
func Pair() (Conn, Conn) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	done := make(chan struct{})
	a := &memConn{out: ab, in: ba, done: done}
	b := &memConn{out: ba, in: ab, done: done}
	return a, b
}

type memConn struct {
	out  chan []byte
	in   chan []byte
	done chan struct{}
}

func (c *memConn) Send(msg []byte) error {
	// Check closure first so Send-after-Close fails deterministically
	// instead of racing the buffered channel in a two-way select.
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	cp := make([]byte, len(msg))
	copy(cp, msg)
	select {
	case c.out <- cp:
		return nil
	case <-c.done:
		return ErrClosed
	}
}

func (c *memConn) Recv() ([]byte, error) {
	select {
	case msg := <-c.in:
		return msg, nil
	case <-c.done:
		return c.drain()
	}
}

// RecvTimeout implements the deadline receive over the in-memory pair.
func (c *memConn) RecvTimeout(d time.Duration) ([]byte, error) {
	// Fast path: a queued message never pays for a timer.
	select {
	case msg := <-c.in:
		return msg, nil
	case <-c.done:
		return c.drain()
	default:
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case msg := <-c.in:
		return msg, nil
	case <-c.done:
		return c.drain()
	case <-timer.C:
		return nil, ErrTimeout
	}
}

// drain empties messages that were queued before Close: closing must not
// drop them, so each Recv keeps delivering until the queue is empty and
// only then reports closure.
func (c *memConn) drain() ([]byte, error) {
	select {
	case msg := <-c.in:
		return msg, nil
	default:
		return nil, ErrClosed
	}
}

func (c *memConn) Close() error {
	select {
	case <-c.done:
	default:
		close(c.done)
	}
	return nil
}

// UDPConn is a datagram transport to one fixed peer. LoRa control traffic
// is tiny and loss-tolerant at the protocol layer (rounds retry and
// resynchronize), so plain UDP matches the deployment model.
type UDPConn struct {
	conn    *net.UDPConn
	peer    *net.UDPAddr
	timeout time.Duration
}

// DialUDP binds local and targets peer, e.g. DialUDP(":0", "127.0.0.1:9000").
func DialUDP(local, peer string) (*UDPConn, error) {
	laddr, err := net.ResolveUDPAddr("udp", local)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	paddr, err := net.ResolveUDPAddr("udp", peer)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return &UDPConn{conn: conn, peer: paddr, timeout: 5 * time.Second}, nil
}

// LocalAddr exposes the bound address (useful with ":0").
func (c *UDPConn) LocalAddr() net.Addr { return c.conn.LocalAddr() }

// SetPeer retargets the connection (a listener learns its peer from the
// first datagram).
func (c *UDPConn) SetPeer(addr *net.UDPAddr) { c.peer = addr }

// ResolvePeer resolves a host:port string into a UDP address for SetPeer.
func ResolvePeer(addr string) (*net.UDPAddr, error) {
	out, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return out, nil
}

// SetTimeout adjusts the default receive deadline used by Recv.
func (c *UDPConn) SetTimeout(d time.Duration) { c.timeout = d }

// Send implements Conn.
func (c *UDPConn) Send(msg []byte) error {
	_, err := c.conn.WriteToUDP(msg, c.peer)
	if err != nil && errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	return err
}

// Recv implements Conn using the connection's default timeout. The first
// sender becomes the peer if none is set.
func (c *UDPConn) Recv() ([]byte, error) { return c.RecvTimeout(c.timeout) }

// RecvTimeout implements Conn, mapping deadline and closure errors onto
// the transport sentinels so callers can branch without net internals.
func (c *UDPConn) RecvTimeout(d time.Duration) ([]byte, error) {
	if err := c.conn.SetReadDeadline(time.Now().Add(d)); err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, fmt.Errorf("%w: %v", ErrClosed, err)
		}
		return nil, err
	}
	buf := make([]byte, 64*1024)
	n, addr, err := c.conn.ReadFromUDP(buf)
	if err != nil {
		switch {
		case errors.Is(err, os.ErrDeadlineExceeded):
			return nil, fmt.Errorf("%w: %v", ErrTimeout, err)
		case errors.Is(err, net.ErrClosed):
			return nil, fmt.Errorf("%w: %v", ErrClosed, err)
		}
		return nil, err
	}
	if c.peer == nil {
		c.peer = addr
	}
	return buf[:n], nil
}

// Close implements Conn and is idempotent: closing an already-closed
// connection returns nil, matching memConn (the Conn contract every
// implementation is tested against).
func (c *UDPConn) Close() error {
	if err := c.conn.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}
