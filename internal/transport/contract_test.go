package transport

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

// connFixture wires one connected (local, remote) pair for the shared
// Conn contract. The contract checks run against local; remote is only
// the far end used to feed it. cleanup tears down any listener or mux
// behind the pair.
type connFixture struct {
	local, remote Conn
	cleanup       func()
}

// connFactory describes one Conn implementation plus the capabilities
// that legitimately vary across transports.
type connFactory struct {
	name string
	make func(t *testing.T) connFixture
	// drains: Close on the local end still delivers already-queued inbound
	// messages before reporting ErrClosed (memConn and muxConn queue in
	// process; TCP and raw UDP hand buffering to the kernel and drop it at
	// close).
	drains bool
	// remoteCloses: closing the remote end eventually surfaces ErrClosed on
	// the local end (in-memory pairs share a done channel, TCP sees EOF;
	// datagram transports have no close signal on the wire).
	remoteCloses bool
}

func connFactories() []connFactory {
	return []connFactory{
		{
			name: "mem",
			make: func(t *testing.T) connFixture {
				a, b := Pair()
				return connFixture{local: a, remote: b, cleanup: func() {}}
			},
			drains:       true,
			remoteCloses: true,
		},
		{
			name: "tcp",
			make: func(t *testing.T) connFixture {
				l, err := ListenTCP("127.0.0.1:0")
				if err != nil {
					t.Fatalf("listen: %v", err)
				}
				type res struct {
					c   Conn
					err error
				}
				ch := make(chan res, 1)
				go func() {
					c, err := l.Accept()
					ch <- res{c, err}
				}()
				client, err := DialTCP(l.Addr().String())
				if err != nil {
					_ = l.Close()
					t.Fatalf("dial: %v", err)
				}
				r := <-ch
				if r.err != nil {
					_ = l.Close()
					t.Fatalf("accept: %v", r.err)
				}
				return connFixture{local: client, remote: r.c, cleanup: func() {
					_ = r.c.Close()
					_ = l.Close()
				}}
			},
			drains:       false,
			remoteCloses: true,
		},
		{
			name: "udp",
			make: func(t *testing.T) connFixture {
				a, err := DialUDP("127.0.0.1:0", "127.0.0.1:9")
				if err != nil {
					t.Fatalf("dial a: %v", err)
				}
				b, err := DialUDP("127.0.0.1:0", a.LocalAddr().String())
				if err != nil {
					_ = a.Close()
					t.Fatalf("dial b: %v", err)
				}
				a.SetPeer(b.LocalAddr().(*net.UDPAddr))
				return connFixture{local: a, remote: b, cleanup: func() { _ = b.Close() }}
			},
			drains:       false,
			remoteCloses: false,
		},
		{
			name: "udpmux",
			make: func(t *testing.T) connFixture {
				mux, err := ListenUDPMux("127.0.0.1:0")
				if err != nil {
					t.Fatalf("mux: %v", err)
				}
				client, err := DialUDP("127.0.0.1:0", mux.Addr().String())
				if err != nil {
					_ = mux.Close()
					t.Fatalf("dial: %v", err)
				}
				if err := client.Send([]byte("contract-hello")); err != nil {
					t.Fatalf("hello: %v", err)
				}
				sess, err := mux.Accept()
				if err != nil {
					t.Fatalf("accept: %v", err)
				}
				if first, err := sess.Recv(); err != nil || string(first) != "contract-hello" {
					t.Fatalf("hello recv = %q, %v", first, err)
				}
				return connFixture{local: sess, remote: client, cleanup: func() {
					_ = client.Close()
					_ = mux.Close()
				}}
			},
			drains:       true,
			remoteCloses: false,
		},
	}
}

// TestConnContract runs the shared Conn contract over every
// implementation: the in-memory pair, framed TCP, raw UDP, and a
// server-side UDP mux session. Capability flags cover the few behaviors
// that legitimately differ; everything else must match exactly, because
// the protocol and server layers are written against memConn semantics
// and must not care which transport is underneath.
func TestConnContract(t *testing.T) {
	for _, f := range connFactories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			t.Run("roundtrip", func(t *testing.T) { contractRoundTrip(t, f) })
			t.Run("copies-payload", func(t *testing.T) { contractCopies(t, f) })
			t.Run("timeout-shape", func(t *testing.T) { contractTimeout(t, f) })
			t.Run("close-local", func(t *testing.T) { contractCloseLocal(t, f) })
			t.Run("close-idempotent", func(t *testing.T) { contractCloseIdempotent(t, f) })
			if f.drains {
				t.Run("close-drains", func(t *testing.T) { contractCloseDrains(t, f) })
			}
			if f.remoteCloses {
				t.Run("close-remote", func(t *testing.T) { contractCloseRemote(t, f) })
			}
		})
	}
}

// contractRoundTrip: messages pass in both directions, in order.
func contractRoundTrip(t *testing.T, f connFactory) {
	fx := f.make(t)
	defer fx.cleanup()
	defer func() { _ = fx.local.Close() }()

	for i := 0; i < 5; i++ {
		msg := []byte(fmt.Sprintf("to-local-%d", i))
		if err := fx.remote.Send(msg); err != nil {
			t.Fatalf("remote send %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		got, err := fx.local.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("local recv %d: %v", i, err)
		}
		if want := fmt.Sprintf("to-local-%d", i); string(got) != want {
			t.Fatalf("recv %d = %q, want %q", i, got, want)
		}
	}
	if err := fx.local.Send([]byte("to-remote")); err != nil {
		t.Fatalf("local send: %v", err)
	}
	got, err := fx.remote.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatalf("remote recv: %v", err)
	}
	if string(got) != "to-remote" {
		t.Fatalf("remote recv = %q", got)
	}
}

// contractCopies: neither mutating the sent buffer after Send nor
// mutating the received buffer can corrupt the transport's copy.
func contractCopies(t *testing.T, f connFactory) {
	fx := f.make(t)
	defer fx.cleanup()
	defer func() { _ = fx.local.Close() }()

	msg := []byte("payload-copy")
	if err := fx.remote.Send(msg); err != nil {
		t.Fatalf("send: %v", err)
	}
	copy(msg, "XXXXXXX") // sender reuses its buffer immediately
	got, err := fx.local.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if !bytes.Equal(got, []byte("payload-copy")) {
		t.Fatalf("recv = %q, sender mutation leaked", got)
	}
}

// contractTimeout: RecvTimeout on an idle conn reports ErrTimeout (and
// not ErrClosed) only after the deadline actually elapses, and the conn
// stays usable afterwards.
func contractTimeout(t *testing.T, f connFactory) {
	fx := f.make(t)
	defer fx.cleanup()
	defer func() { _ = fx.local.Close() }()

	const d = 40 * time.Millisecond
	start := time.Now()
	_, err := fx.local.RecvTimeout(d)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("idle recv err = %v, want ErrTimeout", err)
	}
	if errors.Is(err, ErrClosed) {
		t.Fatalf("timeout error %v must not satisfy ErrClosed", err)
	}
	if elapsed < d-10*time.Millisecond {
		t.Fatalf("returned after %s, before the %s deadline", elapsed, d)
	}

	// A timeout is not an error state: the conn still moves traffic.
	if err := fx.remote.Send([]byte("after-timeout")); err != nil {
		t.Fatalf("send after timeout: %v", err)
	}
	got, err := fx.local.RecvTimeout(2 * time.Second)
	if err != nil || string(got) != "after-timeout" {
		t.Fatalf("recv after timeout = %q, %v", got, err)
	}
}

// contractCloseLocal: after Close, Send and Recv on an empty conn both
// report ErrClosed (never ErrTimeout).
func contractCloseLocal(t *testing.T, f connFactory) {
	fx := f.make(t)
	defer fx.cleanup()

	if err := fx.local.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := fx.local.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
	_, err := fx.local.RecvTimeout(50 * time.Millisecond)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after close = %v, want ErrClosed", err)
	}
	if errors.Is(err, ErrTimeout) {
		t.Fatalf("closed-conn error %v must not satisfy ErrTimeout", err)
	}
}

// contractCloseIdempotent: double Close is a no-op, not an error.
func contractCloseIdempotent(t *testing.T, f connFactory) {
	fx := f.make(t)
	defer fx.cleanup()

	if err := fx.local.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := fx.local.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// contractCloseDrains: implementations that queue in process must keep
// delivering messages that arrived before Close, and only then report
// ErrClosed — the ARQ layer depends on not losing a reply that raced a
// shutdown.
func contractCloseDrains(t *testing.T, f connFactory) {
	fx := f.make(t)
	defer fx.cleanup()

	if err := fx.remote.Send([]byte("queued-1")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := fx.remote.Send([]byte("queued-2")); err != nil {
		t.Fatalf("send: %v", err)
	}
	// Wait until both messages are demonstrably queued at the local end:
	// in-memory delivery is synchronous, the mux delivers via a read loop.
	waitQueued(t, fx.local, 2)

	if err := fx.local.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for i, want := range []string{"queued-1", "queued-2"} {
		got, err := fx.local.Recv()
		if err != nil {
			t.Fatalf("drain recv %d: %v", i, err)
		}
		if string(got) != want {
			t.Fatalf("drain recv %d = %q, want %q", i, got, want)
		}
	}
	if _, err := fx.local.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after drain = %v, want ErrClosed", err)
	}
}

// waitQueued blocks until n messages are buffered inside c. It reaches
// into the concrete queue (white-box) so the drain check never races the
// delivery path.
func waitQueued(t *testing.T, c Conn, n int) {
	t.Helper()
	queueLen := func() int {
		switch cc := c.(type) {
		case *memConn:
			return len(cc.in)
		case *muxConn:
			return len(cc.in)
		default:
			t.Fatalf("waitQueued: %T does not queue in process", c)
			return 0
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for queueLen() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d messages queued", queueLen(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// contractCloseRemote: when the transport can observe the far end
// closing, a blocked local Recv reports ErrClosed.
func contractCloseRemote(t *testing.T, f connFactory) {
	fx := f.make(t)
	defer fx.cleanup()
	defer func() { _ = fx.local.Close() }()

	if err := fx.remote.Close(); err != nil {
		t.Fatalf("remote close: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := fx.local.RecvTimeout(100 * time.Millisecond)
		if errors.Is(err, ErrClosed) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("recv after remote close = %v, want ErrClosed", err)
		}
	}
}
