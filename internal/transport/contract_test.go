package transport_test

import (
	"net"
	"testing"

	"repro/internal/transport"
	"repro/internal/transport/transporttest"
)

// connFactories wires one connected (local, remote) fixture per Conn
// implementation in this package. The shared contract itself lives in
// transporttest, so the lora medium conn (and any future transport) runs
// the identical suite.
func connFactories() []transporttest.Factory {
	return []transporttest.Factory{
		{
			Name: "mem",
			Make: func(t *testing.T) transporttest.Fixture {
				a, b := transport.Pair()
				return transporttest.Fixture{
					Local: a, Remote: b, Cleanup: func() {},
					QueueLen: func() int { return transport.InProcessQueueLen(t, a) },
				}
			},
			Drains:       true,
			RemoteCloses: true,
		},
		{
			Name: "tcp",
			Make: func(t *testing.T) transporttest.Fixture {
				l, err := transport.ListenTCP("127.0.0.1:0")
				if err != nil {
					t.Fatalf("listen: %v", err)
				}
				type res struct {
					c   transport.Conn
					err error
				}
				ch := make(chan res, 1)
				go func() {
					c, err := l.Accept()
					ch <- res{c, err}
				}()
				client, err := transport.DialTCP(l.Addr().String())
				if err != nil {
					_ = l.Close()
					t.Fatalf("dial: %v", err)
				}
				r := <-ch
				if r.err != nil {
					_ = l.Close()
					t.Fatalf("accept: %v", r.err)
				}
				return transporttest.Fixture{Local: client, Remote: r.c, Cleanup: func() {
					_ = r.c.Close()
					_ = l.Close()
				}}
			},
			Drains:       false,
			RemoteCloses: true,
		},
		{
			Name: "udp",
			Make: func(t *testing.T) transporttest.Fixture {
				a, err := transport.DialUDP("127.0.0.1:0", "127.0.0.1:9")
				if err != nil {
					t.Fatalf("dial a: %v", err)
				}
				b, err := transport.DialUDP("127.0.0.1:0", a.LocalAddr().String())
				if err != nil {
					_ = a.Close()
					t.Fatalf("dial b: %v", err)
				}
				a.SetPeer(b.LocalAddr().(*net.UDPAddr))
				return transporttest.Fixture{Local: a, Remote: b, Cleanup: func() { _ = b.Close() }}
			},
			Drains:       false,
			RemoteCloses: false,
		},
		{
			Name: "udpmux",
			Make: func(t *testing.T) transporttest.Fixture {
				mux, err := transport.ListenUDPMux("127.0.0.1:0")
				if err != nil {
					t.Fatalf("mux: %v", err)
				}
				client, err := transport.DialUDP("127.0.0.1:0", mux.Addr().String())
				if err != nil {
					_ = mux.Close()
					t.Fatalf("dial: %v", err)
				}
				if err := client.Send([]byte("contract-hello")); err != nil {
					t.Fatalf("hello: %v", err)
				}
				sess, err := mux.Accept()
				if err != nil {
					t.Fatalf("accept: %v", err)
				}
				if first, err := sess.Recv(); err != nil || string(first) != "contract-hello" {
					t.Fatalf("hello recv = %q, %v", first, err)
				}
				return transporttest.Fixture{Local: sess, Remote: client, Cleanup: func() {
					_ = client.Close()
					_ = mux.Close()
				},
					QueueLen: func() int { return transport.InProcessQueueLen(t, sess) },
				}
			},
			Drains:       true,
			RemoteCloses: false,
		},
	}
}

// TestConnContract runs the shared Conn contract over every
// implementation in this package: the in-memory pair, framed TCP, raw
// UDP, and a server-side UDP mux session. Capability flags cover the few
// behaviors that legitimately differ; everything else must match
// exactly. The lora medium conn runs the same suite from its own
// package.
func TestConnContract(t *testing.T) {
	for _, f := range connFactories() {
		f := f
		t.Run(f.Name, func(t *testing.T) { transporttest.Run(t, f) })
	}
}
