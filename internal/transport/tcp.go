package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"syscall"
	"time"
)

// TCPConn is a message-oriented Conn over one TCP stream, cut into
// CRC-framed messages (see frame.go). Its error semantics match memConn:
// Send after Close fails with ErrClosed, an expired receive deadline is
// ErrTimeout, and a peer's close surfaces as ErrClosed. Unlike memConn
// it cannot drain after a local Close — the kernel discards undelivered
// bytes with the socket.
//
// Send is safe for concurrent callers (the fault injector's delayed
// transmissions fire from timer goroutines); Recv/RecvTimeout are
// serialized internally but, like every Conn here, are meant for one
// receiving goroutine.
type TCPConn struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes so they cannot interleave

	rmu     sync.Mutex // guards the read state below
	rbuf    []byte     // unconsumed stream bytes; a partial frame survives a deadline
	scratch []byte     // socket read buffer, reused across calls

	timeout time.Duration
	once    sync.Once
}

// NewTCPConn wraps an established TCP (or TCP-like) stream.
func NewTCPConn(conn net.Conn) *TCPConn {
	return &TCPConn{conn: conn, scratch: make([]byte, 32*1024), timeout: 5 * time.Second}
}

// DialTCP connects to a listening peer, e.g. DialTCP("127.0.0.1:9300").
func DialTCP(addr string) (*TCPConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return NewTCPConn(conn), nil
}

// LocalAddr exposes the bound address.
func (c *TCPConn) LocalAddr() net.Addr { return c.conn.LocalAddr() }

// SetTimeout adjusts the default receive deadline used by Recv.
func (c *TCPConn) SetTimeout(d time.Duration) { c.timeout = d }

// Send implements Conn: one framed write per message. The header and
// payload go out in a single Write under the write mutex, so concurrent
// senders can never interleave partial frames.
func (c *TCPConn) Send(msg []byte) error {
	frame, err := AppendFrame(make([]byte, 0, frameHeaderLen+len(msg)), msg)
	if err != nil {
		return err
	}
	c.wmu.Lock()
	_, err = c.conn.Write(frame)
	c.wmu.Unlock()
	if err != nil {
		return mapNetErr(err)
	}
	return nil
}

// Recv implements Conn using the connection's default timeout.
func (c *TCPConn) Recv() ([]byte, error) { return c.RecvTimeout(c.timeout) }

// RecvTimeout implements Conn. A deadline that expires mid-frame leaves
// the partial frame buffered: the stream position is preserved and the
// next call resumes exactly where this one stopped.
func (c *TCPConn) RecvTimeout(d time.Duration) ([]byte, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	//vklint:ignore norand -- receive deadline arithmetic only; never feeds randomness or key material
	deadline := time.Now().Add(d)
	for {
		payload, n, err := DecodeFrame(c.rbuf, MaxFrameBytes)
		if err != nil {
			// The stream cannot resynchronize past a bad frame; poison
			// the connection so both ends see a clean ErrClosed next.
			// Dropping the buffer matters: later calls must hit the closed
			// socket, not re-decode the same bad frame forever.
			c.rbuf = nil
			_ = c.Close()
			return nil, err
		}
		if payload != nil {
			c.rbuf = append(c.rbuf[:0], c.rbuf[n:]...)
			return payload, nil
		}
		if err := c.conn.SetReadDeadline(deadline); err != nil {
			return nil, mapNetErr(err)
		}
		n, err = c.conn.Read(c.scratch)
		if n > 0 {
			c.rbuf = append(c.rbuf, c.scratch[:n]...)
		}
		if err != nil && n == 0 {
			return nil, mapNetErr(err)
		}
	}
}

// Close implements Conn and is idempotent: the first call closes the
// socket, later calls return nil, matching memConn.
func (c *TCPConn) Close() error {
	var err error
	c.once.Do(func() { err = c.conn.Close() })
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return fmt.Errorf("transport: %w", err)
	}
	return nil
}

// mapNetErr folds net-package failures onto the transport sentinels so
// callers branch on errors.Is(ErrTimeout/ErrClosed) without net
// internals. EOF and reset-by-peer both mean the session is over, which
// is exactly what ErrClosed communicates to the protocol layer.
func mapNetErr(err error) error {
	switch {
	case errors.Is(err, os.ErrDeadlineExceeded):
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	case errors.Is(err, net.ErrClosed), errors.Is(err, io.EOF), errors.Is(err, io.ErrClosedPipe),
		errors.Is(err, io.ErrUnexpectedEOF), errors.Is(err, syscall.ECONNRESET), errors.Is(err, syscall.EPIPE):
		return fmt.Errorf("%w: %v", ErrClosed, err)
	}
	return err
}

// TCPListener accepts framed TCP connections as transport.Conns.
type TCPListener struct {
	l net.Listener
}

// ListenTCP listens on addr (":0" picks a free port).
func ListenTCP(addr string) (*TCPListener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return &TCPListener{l: l}, nil
}

// Accept implements Listener; a closed listener reports ErrClosed.
func (l *TCPListener) Accept() (Conn, error) {
	conn, err := l.l.Accept()
	if err != nil {
		return nil, mapNetErr(err)
	}
	return NewTCPConn(conn), nil
}

// Addr implements Listener.
func (l *TCPListener) Addr() net.Addr { return l.l.Addr() }

// Close implements Listener; pending and future Accepts fail with
// ErrClosed.
func (l *TCPListener) Close() error {
	if err := l.l.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
		return fmt.Errorf("transport: %w", err)
	}
	return nil
}
