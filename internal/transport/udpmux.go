package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// UDPMux promotes the dial-only UDPConn model into a server side: one
// UDP socket shared by many peers, demultiplexed by remote address. The
// first datagram from an unknown address creates a session Conn and
// offers it on the accept backlog; later datagrams from that address are
// delivered to the session's queue. Sends from every session go out the
// shared socket, addressed to that session's peer.
//
// UDP semantics are preserved end to end: a session whose delivery queue
// is full drops the datagram (the ARQ layer retransmits), and when the
// accept backlog is full a *new* peer's datagrams are dropped until a
// slot frees — exactly how an overloaded datagram server sheds load. A
// closed session's address is forgotten, so a late retransmit from that
// peer would be treated as a new connection; the serving layer rejects
// such ghosts when no valid handshake follows.
type UDPMux struct {
	pc *net.UDPConn

	mu       sync.Mutex
	sessions map[string]*muxConn
	backlog  chan *muxConn
	done     chan struct{}
	once     sync.Once
}

// muxQueueDepth is each session's delivery queue length, matching the
// in-memory pair's channel depth.
const muxQueueDepth = 64

// muxBacklog bounds sessions accepted by the mux but not yet taken by
// Accept.
const muxBacklog = 256

// ListenUDPMux binds addr (":0" picks a free port) and starts the
// demultiplexing read loop.
func ListenUDPMux(addr string) (*UDPMux, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	pc, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	m := &UDPMux{
		pc:       pc,
		sessions: make(map[string]*muxConn),
		backlog:  make(chan *muxConn, muxBacklog),
		done:     make(chan struct{}),
	}
	go m.readLoop()
	return m, nil
}

// readLoop owns the socket's receive side: it routes every datagram to
// its session queue, creating sessions for new peers.
// udpPumpTick bounds one blocking read in the pump, keeping it
// responsive to Close even on platforms where closing the socket does
// not reliably wake a blocked read.
const udpPumpTick = 1 * time.Second

func (m *UDPMux) readLoop() {
	buf := make([]byte, 64*1024)
	for {
		// Deadline-governed read (netdeadline): a silent fleet must not
		// wedge the demultiplexer goroutine forever.
		_ = m.pc.SetReadDeadline(time.Now().Add(udpPumpTick))
		n, raddr, err := m.pc.ReadFromUDP(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-m.done:
				return
			default:
			}
			continue // deadline tick or transient datagram error; still alive
		}
		msg := make([]byte, n)
		copy(msg, buf[:n])
		key := raddr.String()

		m.mu.Lock()
		mc, known := m.sessions[key]
		if !known {
			mc = &muxConn{mux: m, peer: raddr, key: key, in: make(chan []byte, muxQueueDepth), done: make(chan struct{}), timeout: 5 * time.Second}
			select {
			case m.backlog <- mc:
				m.sessions[key] = mc
			default:
				// Backlog full: shed the new peer. Its retransmits will
				// retry admission once Accept frees a slot.
				m.mu.Unlock()
				continue
			}
		}
		m.mu.Unlock()
		mc.deliver(msg)
	}
}

// Accept implements Listener: it returns the next new-peer session.
func (m *UDPMux) Accept() (Conn, error) {
	select {
	case mc := <-m.backlog:
		return mc, nil
	case <-m.done:
		return nil, ErrClosed
	}
}

// Addr implements Listener.
func (m *UDPMux) Addr() net.Addr { return m.pc.LocalAddr() }

// Close implements Listener: it stops the read loop, fails pending
// Accepts, and closes every live session. Idempotent.
func (m *UDPMux) Close() error {
	m.once.Do(func() {
		close(m.done)
		_ = m.pc.Close()
		m.mu.Lock()
		open := make([]*muxConn, 0, len(m.sessions))
		for _, mc := range m.sessions {
			open = append(open, mc)
		}
		m.mu.Unlock()
		for _, mc := range open {
			_ = mc.Close()
		}
	})
	return nil
}

// forget drops a closed session's address mapping.
func (m *UDPMux) forget(key string) {
	m.mu.Lock()
	delete(m.sessions, key)
	m.mu.Unlock()
}

// muxConn is one peer's session on a UDPMux. Close semantics match
// memConn: datagrams queued before a local Close still drain, then
// Recv reports ErrClosed; Send after Close fails deterministically.
type muxConn struct {
	mux     *UDPMux
	peer    *net.UDPAddr
	key     string
	in      chan []byte
	done    chan struct{}
	once    sync.Once
	timeout time.Duration
}

// deliver enqueues an inbound datagram, dropping when the queue is full
// or the session is closed — both are indistinguishable from wire loss.
func (c *muxConn) deliver(msg []byte) {
	select {
	case <-c.done:
	default:
		select {
		case c.in <- msg:
		default:
		}
	}
}

// RemoteAddr exposes the peer this session is bound to.
func (c *muxConn) RemoteAddr() net.Addr { return c.peer }

// SetTimeout adjusts the default receive deadline used by Recv.
func (c *muxConn) SetTimeout(d time.Duration) { c.timeout = d }

// Send implements Conn, writing out the mux's shared socket.
func (c *muxConn) Send(msg []byte) error {
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	_, err := c.mux.pc.WriteToUDP(msg, c.peer)
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return fmt.Errorf("%w: %v", ErrClosed, err)
		}
		return err
	}
	return nil
}

// Recv implements Conn using the session's default timeout.
func (c *muxConn) Recv() ([]byte, error) { return c.RecvTimeout(c.timeout) }

// RecvTimeout implements Conn.
func (c *muxConn) RecvTimeout(d time.Duration) ([]byte, error) {
	select {
	case msg := <-c.in:
		return msg, nil
	case <-c.done:
		return c.drain()
	default:
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case msg := <-c.in:
		return msg, nil
	case <-c.done:
		return c.drain()
	case <-timer.C:
		return nil, ErrTimeout
	}
}

// drain keeps delivering datagrams queued before Close, then reports
// closure — the memConn contract.
func (c *muxConn) drain() ([]byte, error) {
	select {
	case msg := <-c.in:
		return msg, nil
	default:
		return nil, ErrClosed
	}
}

// Close implements Conn: the session's address mapping is forgotten so
// the peer slot can be reused. Idempotent.
func (c *muxConn) Close() error {
	c.once.Do(func() {
		close(c.done)
		c.mux.forget(c.key)
	})
	return nil
}
