package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/rng"
)

// collect receives until the timeout fires and returns everything seen.
func collect(t *testing.T, c Conn, wait time.Duration) [][]byte {
	t.Helper()
	var out [][]byte
	for {
		msg, err := c.RecvTimeout(wait)
		if err != nil {
			return out
		}
		out = append(out, msg)
	}
}

func TestFaultyPassthrough(t *testing.T) {
	a, b := FaultyPair(FaultConfig{}, rng.New(1))
	defer a.Close()
	defer b.Close()
	for i := 0; i < 10; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, b, 20*time.Millisecond)
	if len(got) != 10 {
		t.Fatalf("zero-fault config delivered %d/10", len(got))
	}
	for i, m := range got {
		if m[0] != byte(i) {
			t.Fatalf("message %d reordered or corrupted: %v", i, m)
		}
	}
	st := a.Stats()
	if st.Sent != 10 || st.Delivered != 10 || st.Dropped+st.Duplicated+st.Reordered+st.Corrupted+st.Delayed != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestFaultyDropRate(t *testing.T) {
	const n = 2000
	a, b := FaultyPair(FaultConfig{Drop: 0.25}, rng.New(7))
	defer a.Close()
	defer b.Close()
	for i := 0; i < n; i++ {
		if err := a.Send([]byte(fmt.Sprintf("m%04d", i))); err != nil {
			t.Fatal(err)
		}
		// Drain as we go so the in-memory buffer never backpressures.
		for {
			if _, err := b.RecvTimeout(0); err != nil {
				break
			}
		}
	}
	st := a.Stats()
	if st.Dropped < n/5 || st.Dropped > n/3 {
		t.Fatalf("dropped %d of %d, far from 25%%", st.Dropped, n)
	}
	if st.Delivered != n-st.Dropped {
		t.Fatalf("delivered %d + dropped %d != sent %d", st.Delivered, st.Dropped, n)
	}
}

func TestFaultyDeterministicSchedule(t *testing.T) {
	// Same seed, same message sequence ⇒ byte-identical delivery schedule.
	run := func(seed int64) [][]byte {
		a, b := FaultyPair(FaultConfig{Drop: 0.3, Duplicate: 0.2, Reorder: 0.2, Corrupt: 0.1}, rng.New(seed))
		defer a.Close()
		defer b.Close()
		var got [][]byte
		for i := 0; i < 200; i++ {
			if err := a.Send([]byte(fmt.Sprintf("msg-%03d", i))); err != nil {
				t.Fatal(err)
			}
			// Drain as we go: receiving draws nothing from the fault
			// source, so this cannot perturb the schedule.
			for {
				msg, err := b.RecvTimeout(0)
				if err != nil {
					break
				}
				got = append(got, msg)
			}
		}
		return append(got, collect(t, b, 10*time.Millisecond)...)
	}
	first, second := run(42), run(42)
	if len(first) != len(second) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Fatalf("same seed diverged at delivery %d: %q vs %q", i, first[i], second[i])
		}
	}
	other := run(43)
	same := len(other) == len(first)
	if same {
		for i := range first {
			if !bytes.Equal(first[i], other[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestFaultyReorderSwapsAdjacent(t *testing.T) {
	// Reorder=1 with two messages: the first is held, the second send
	// releases it after itself — an adjacent swap.
	a, b := FaultyPair(FaultConfig{Reorder: 1}, rng.New(3))
	defer b.Close()
	a.Send([]byte("first"))
	a.Send([]byte("second"))
	got := collect(t, b, 20*time.Millisecond)
	if len(got) != 2 || string(got[0]) != "second" || string(got[1]) != "first" {
		t.Fatalf("want [second first], got %q", got)
	}
	if st := a.Stats(); st.Reordered == 0 {
		t.Fatalf("reorder not counted: %+v", st)
	}
	a.Close()
}

func TestFaultyCloseFlushesHeld(t *testing.T) {
	a, b := FaultyPair(FaultConfig{Reorder: 1}, rng.New(4))
	defer b.Close()
	a.Send([]byte("held"))
	a.Close()
	got, err := b.RecvTimeout(100 * time.Millisecond)
	if err != nil || string(got) != "held" {
		t.Fatalf("held message lost on close: %q %v", got, err)
	}
}

func TestFaultyDuplicate(t *testing.T) {
	a, b := FaultyPair(FaultConfig{Duplicate: 1}, rng.New(5))
	defer a.Close()
	defer b.Close()
	a.Send([]byte("x"))
	got := collect(t, b, 20*time.Millisecond)
	if len(got) != 2 || string(got[0]) != "x" || string(got[1]) != "x" {
		t.Fatalf("want two copies, got %q", got)
	}
}

func TestFaultyCorrupt(t *testing.T) {
	a, b := FaultyPair(FaultConfig{Corrupt: 1}, rng.New(6))
	defer a.Close()
	defer b.Close()
	msg := bytes.Repeat([]byte("payload."), 8)
	a.Send(msg)
	got, err := b.RecvTimeout(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("corrupt=1 delivered an intact message")
	}
	if len(got) != len(msg) {
		t.Fatalf("corruption changed length: %d vs %d", len(got), len(msg))
	}
}

func TestFaultyDelay(t *testing.T) {
	a, b := FaultyPair(FaultConfig{Delay: 1, MaxDelay: 20 * time.Millisecond}, rng.New(8))
	defer a.Close()
	defer b.Close()
	a.Send([]byte("late"))
	got, err := b.RecvTimeout(500 * time.Millisecond)
	if err != nil || string(got) != "late" {
		t.Fatalf("delayed message never arrived: %q %v", got, err)
	}
	if st := a.Stats(); st.Delayed != 1 {
		t.Fatalf("delay not counted: %+v", st)
	}
}

func TestFaultyConcurrent(t *testing.T) {
	// Both directions faulted, both ends sending and receiving from
	// separate goroutines: must be race-clean (run under -race).
	a, b := FaultyPair(FaultConfig{Drop: 0.2, Duplicate: 0.2, Reorder: 0.2, Corrupt: 0.1}, rng.New(9))
	var senders, receivers sync.WaitGroup
	done := make(chan struct{})
	senders.Add(2)
	receivers.Add(2)
	send := func(c Conn) {
		defer senders.Done()
		for i := 0; i < 200; i++ {
			c.Send([]byte{byte(i)})
		}
	}
	recv := func(c Conn) {
		defer receivers.Done()
		for {
			if _, err := c.RecvTimeout(10 * time.Millisecond); err != nil {
				// Keep draining until the senders are finished, so a
				// momentary silence never strands a blocked sender.
				select {
				case <-done:
					return
				default:
				}
			}
		}
	}
	go send(a)
	go send(b)
	go recv(a)
	go recv(b)
	senders.Wait()
	close(done)
	receivers.Wait()
	a.Close()
	b.Close()
	if st := a.Stats(); st.Sent != 200 {
		t.Fatalf("lost track of sends: %+v", st)
	}
}
