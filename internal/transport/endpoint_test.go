package transport_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/transport"
)

// TestEndpointUnknownScheme pins the typed error: unknown schemes fail
// with *ErrUnknownScheme listing every registered scheme, from both Dial
// and Listen.
func TestEndpointUnknownScheme(t *testing.T) {
	_, err := transport.Dial("carrier-pigeon://roof")
	var unknown *transport.ErrUnknownScheme
	if !errors.As(err, &unknown) {
		t.Fatalf("Dial err = %v, want *ErrUnknownScheme", err)
	}
	if unknown.Scheme != "carrier-pigeon" {
		t.Errorf("Scheme = %q", unknown.Scheme)
	}
	for _, want := range []string{"tcp", "udp", "mem"} {
		found := false
		for _, k := range unknown.Known {
			if k == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Known %v misses %q", unknown.Known, want)
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error message %q does not list %q", err, want)
		}
	}
	if _, err := transport.Listen("carrier-pigeon://roof"); !errors.As(err, &unknown) {
		t.Errorf("Listen err = %v, want *ErrUnknownScheme", err)
	}
}

// TestEndpointNoScheme: bare addresses are rejected with guidance, not
// guessed at.
func TestEndpointNoScheme(t *testing.T) {
	if _, err := transport.Dial("127.0.0.1:9300"); err == nil || !strings.Contains(err.Error(), "scheme") {
		t.Errorf("Dial bare address err = %v, want a scheme complaint", err)
	}
}

// TestEndpointTCP: the registry path reaches the framed TCP transport
// end to end.
func TestEndpointTCP(t *testing.T) {
	l, err := transport.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer func() { _ = l.Close() }()
	accepted := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := transport.Dial("tcp://" + l.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() { _ = client.Close() }()
	if err := client.Send([]byte("over-endpoint")); err != nil {
		t.Fatalf("send: %v", err)
	}
	server := <-accepted
	defer func() { _ = server.Close() }()
	got, err := server.RecvTimeout(2 * time.Second)
	if err != nil || string(got) != "over-endpoint" {
		t.Fatalf("recv = %q, %v", got, err)
	}
}

// TestEndpointMem covers the in-process broker: rendezvous by name,
// duplicate-listen rejection, dial-without-listener rejection, and
// name reuse after close.
func TestEndpointMem(t *testing.T) {
	if _, err := transport.Dial("mem://nobody-home"); err == nil {
		t.Fatal("dial with no listener succeeded")
	}

	l, err := transport.Listen("mem://broker-test")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	if _, err := transport.Listen("mem://broker-test"); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
	if got := l.Addr().String(); got != "mem://broker-test" {
		t.Errorf("Addr = %q", got)
	}

	client, err := transport.Dial("mem://broker-test")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	server, err := l.Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	if err := client.Send([]byte("ping")); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := server.RecvTimeout(2 * time.Second)
	if err != nil || string(got) != "ping" {
		t.Fatalf("recv = %q, %v", got, err)
	}
	_ = client.Close()
	_ = server.Close()

	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := l.Accept(); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("accept after close = %v, want ErrClosed", err)
	}
	if _, err := transport.Dial("mem://broker-test"); err == nil {
		t.Error("dial after listener close succeeded")
	}
	// The name is free again.
	l2, err := transport.Listen("mem://broker-test")
	if err != nil {
		t.Fatalf("relisten: %v", err)
	}
	_ = l2.Close()
}

// TestSchemesSorted: the scheme list is stable and sorted, so the
// unknown-scheme error renders identically run to run.
func TestSchemesSorted(t *testing.T) {
	got := transport.Schemes()
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Schemes() not strictly sorted: %v", got)
		}
	}
}
