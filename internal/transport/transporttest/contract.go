// Package transporttest exports the shared transport.Conn contract
// suite, so every Conn implementation — the in-memory pair, framed TCP,
// raw UDP, the UDP mux, and the shared-medium LoRa conn — is held to one
// behavioral spec. The protocol and server layers are written against
// memConn semantics and must not care which transport is underneath.
package transporttest

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/transport"
)

// Fixture is one connected (local, remote) pair under test. The contract
// checks run against Local; Remote is only the far end used to feed it.
type Fixture struct {
	Local, Remote transport.Conn
	// Cleanup tears down any listener, mux, or medium behind the pair.
	Cleanup func()
	// QueueLen reports the messages buffered in-process at Local.
	// Required when the factory declares Drains: the drain check must
	// wait until messages are demonstrably queued before closing, so it
	// never races the delivery path.
	QueueLen func() int
}

// Factory describes one Conn implementation plus the capabilities that
// legitimately vary across transports.
type Factory struct {
	Name string
	Make func(t *testing.T) Fixture
	// Drains: Close on the local end still delivers already-queued
	// inbound messages before reporting ErrClosed (in-process transports
	// queue in the conn; TCP and raw UDP hand buffering to the kernel
	// and drop it at close).
	Drains bool
	// RemoteCloses: closing the remote end eventually surfaces ErrClosed
	// on the local end (shared-fate pairs and TCP see it; raw datagram
	// transports have no close signal on the wire).
	RemoteCloses bool
}

// Run executes the full contract against one factory, as subtests.
func Run(t *testing.T, f Factory) {
	t.Run("roundtrip", func(t *testing.T) { roundTrip(t, f) })
	t.Run("copies-payload", func(t *testing.T) { copies(t, f) })
	t.Run("timeout-shape", func(t *testing.T) { timeoutShape(t, f) })
	t.Run("close-local", func(t *testing.T) { closeLocal(t, f) })
	t.Run("close-idempotent", func(t *testing.T) { closeIdempotent(t, f) })
	if f.Drains {
		t.Run("close-drains", func(t *testing.T) { closeDrains(t, f) })
	}
	if f.RemoteCloses {
		t.Run("close-remote", func(t *testing.T) { closeRemote(t, f) })
	}
}

// roundTrip: messages pass in both directions, in order.
func roundTrip(t *testing.T, f Factory) {
	fx := f.Make(t)
	defer fx.Cleanup()
	defer func() { _ = fx.Local.Close() }()

	for i := 0; i < 5; i++ {
		msg := []byte(fmt.Sprintf("to-local-%d", i))
		if err := fx.Remote.Send(msg); err != nil {
			t.Fatalf("remote send %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		got, err := fx.Local.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("local recv %d: %v", i, err)
		}
		if want := fmt.Sprintf("to-local-%d", i); string(got) != want {
			t.Fatalf("recv %d = %q, want %q", i, got, want)
		}
	}
	if err := fx.Local.Send([]byte("to-remote")); err != nil {
		t.Fatalf("local send: %v", err)
	}
	got, err := fx.Remote.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatalf("remote recv: %v", err)
	}
	if string(got) != "to-remote" {
		t.Fatalf("remote recv = %q", got)
	}
}

// copies: mutating the sent buffer after Send cannot corrupt the
// transport's copy.
func copies(t *testing.T, f Factory) {
	fx := f.Make(t)
	defer fx.Cleanup()
	defer func() { _ = fx.Local.Close() }()

	msg := []byte("payload-copy")
	if err := fx.Remote.Send(msg); err != nil {
		t.Fatalf("send: %v", err)
	}
	copy(msg, "XXXXXXX") // sender reuses its buffer immediately
	got, err := fx.Local.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if !bytes.Equal(got, []byte("payload-copy")) {
		t.Fatalf("recv = %q, sender mutation leaked", got)
	}
}

// timeoutShape: RecvTimeout on an idle conn reports ErrTimeout (and not
// ErrClosed) only after the deadline actually elapses, and the conn
// stays usable afterwards.
func timeoutShape(t *testing.T, f Factory) {
	fx := f.Make(t)
	defer fx.Cleanup()
	defer func() { _ = fx.Local.Close() }()

	const d = 40 * time.Millisecond
	start := time.Now()
	_, err := fx.Local.RecvTimeout(d)
	elapsed := time.Since(start)
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("idle recv err = %v, want ErrTimeout", err)
	}
	if errors.Is(err, transport.ErrClosed) {
		t.Fatalf("timeout error %v must not satisfy ErrClosed", err)
	}
	if elapsed < d-10*time.Millisecond {
		t.Fatalf("returned after %s, before the %s deadline", elapsed, d)
	}

	// A timeout is not an error state: the conn still moves traffic.
	if err := fx.Remote.Send([]byte("after-timeout")); err != nil {
		t.Fatalf("send after timeout: %v", err)
	}
	got, err := fx.Local.RecvTimeout(2 * time.Second)
	if err != nil || string(got) != "after-timeout" {
		t.Fatalf("recv after timeout = %q, %v", got, err)
	}
}

// closeLocal: after Close, Send and Recv on an empty conn both report
// ErrClosed (never ErrTimeout).
func closeLocal(t *testing.T, f Factory) {
	fx := f.Make(t)
	defer fx.Cleanup()

	if err := fx.Local.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := fx.Local.Send([]byte("x")); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
	_, err := fx.Local.RecvTimeout(50 * time.Millisecond)
	if !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("recv after close = %v, want ErrClosed", err)
	}
	if errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("closed-conn error %v must not satisfy ErrTimeout", err)
	}
}

// closeIdempotent: double Close is a no-op, not an error.
func closeIdempotent(t *testing.T, f Factory) {
	fx := f.Make(t)
	defer fx.Cleanup()

	if err := fx.Local.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := fx.Local.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// closeDrains: implementations that queue in process must keep
// delivering messages that arrived before Close, and only then report
// ErrClosed — the ARQ layer depends on not losing a reply that raced a
// shutdown.
func closeDrains(t *testing.T, f Factory) {
	fx := f.Make(t)
	defer fx.Cleanup()
	if fx.QueueLen == nil {
		t.Fatalf("factory %s declares Drains but provides no QueueLen", f.Name)
	}

	if err := fx.Remote.Send([]byte("queued-1")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := fx.Remote.Send([]byte("queued-2")); err != nil {
		t.Fatalf("send: %v", err)
	}
	// Wait until both messages are demonstrably queued at the local end:
	// in-memory delivery is synchronous, the mux delivers via a read
	// loop, the LoRa medium at frame end.
	deadline := time.Now().Add(2 * time.Second)
	for fx.QueueLen() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/2 messages queued", fx.QueueLen())
		}
		time.Sleep(time.Millisecond)
	}

	if err := fx.Local.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for i, want := range []string{"queued-1", "queued-2"} {
		got, err := fx.Local.Recv()
		if err != nil {
			t.Fatalf("drain recv %d: %v", i, err)
		}
		if string(got) != want {
			t.Fatalf("drain recv %d = %q, want %q", i, got, want)
		}
	}
	if _, err := fx.Local.Recv(); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("recv after drain = %v, want ErrClosed", err)
	}
}

// closeRemote: when the transport can observe the far end closing, a
// blocked local Recv reports ErrClosed.
func closeRemote(t *testing.T, f Factory) {
	fx := f.Make(t)
	defer fx.Cleanup()
	defer func() { _ = fx.Local.Close() }()

	if err := fx.Remote.Close(); err != nil {
		t.Fatalf("remote close: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := fx.Local.RecvTimeout(100 * time.Millisecond)
		if errors.Is(err, transport.ErrClosed) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("recv after remote close = %v, want ErrClosed", err)
		}
	}
}
