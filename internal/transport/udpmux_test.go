package transport

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

// muxClient dials the mux, announces itself with one datagram, and
// returns the client end plus the accepted server-side session.
func muxClient(t *testing.T, mux *UDPMux, tag string) (*UDPConn, Conn) {
	t.Helper()
	c, err := DialUDP("127.0.0.1:0", mux.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := c.Send([]byte(tag)); err != nil {
		t.Fatalf("announce: %v", err)
	}
	sess, err := mux.Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	got, err := sess.Recv()
	if err != nil || string(got) != tag {
		t.Fatalf("announce recv = %q, %v (want %q)", got, err, tag)
	}
	return c, sess
}

// TestUDPMuxDemux: two peers on one socket get isolated sessions —
// traffic routes by remote address in both directions and never crosses.
func TestUDPMuxDemux(t *testing.T) {
	mux, err := ListenUDPMux("127.0.0.1:0")
	if err != nil {
		t.Fatalf("mux: %v", err)
	}
	defer func() { _ = mux.Close() }()

	cA, sessA := muxClient(t, mux, "peer-a")
	defer func() { _ = cA.Close() }()
	cB, sessB := muxClient(t, mux, "peer-b")
	defer func() { _ = cB.Close() }()

	// Interleave sends from both peers; each session sees only its own.
	for i := 0; i < 3; i++ {
		if err := cA.Send([]byte(fmt.Sprintf("a-%d", i))); err != nil {
			t.Fatalf("a send: %v", err)
		}
		if err := cB.Send([]byte(fmt.Sprintf("b-%d", i))); err != nil {
			t.Fatalf("b send: %v", err)
		}
	}
	for i := 0; i < 3; i++ {
		got, err := sessA.RecvTimeout(2 * time.Second)
		if err != nil || string(got) != fmt.Sprintf("a-%d", i) {
			t.Fatalf("sessA recv %d = %q, %v", i, got, err)
		}
		got, err = sessB.RecvTimeout(2 * time.Second)
		if err != nil || string(got) != fmt.Sprintf("b-%d", i) {
			t.Fatalf("sessB recv %d = %q, %v", i, got, err)
		}
	}

	// Server → peer routing: each session's Send reaches only its peer.
	if err := sessA.Send([]byte("to-a")); err != nil {
		t.Fatalf("sessA send: %v", err)
	}
	if err := sessB.Send([]byte("to-b")); err != nil {
		t.Fatalf("sessB send: %v", err)
	}
	if got, err := cA.RecvTimeout(2 * time.Second); err != nil || string(got) != "to-a" {
		t.Fatalf("cA recv = %q, %v", got, err)
	}
	if got, err := cB.RecvTimeout(2 * time.Second); err != nil || string(got) != "to-b" {
		t.Fatalf("cB recv = %q, %v", got, err)
	}
}

// TestUDPMuxSessionCloseForgetsPeer: after a session closes, the same
// remote address is a brand-new peer — its next datagram comes out of
// Accept again rather than landing in the dead session.
func TestUDPMuxSessionCloseForgetsPeer(t *testing.T) {
	mux, err := ListenUDPMux("127.0.0.1:0")
	if err != nil {
		t.Fatalf("mux: %v", err)
	}
	defer func() { _ = mux.Close() }()

	c, sess := muxClient(t, mux, "first-life")
	defer func() { _ = c.Close() }()
	if err := sess.Close(); err != nil {
		t.Fatalf("session close: %v", err)
	}

	// Same socket, same source address: must be re-admitted as new.
	if err := c.Send([]byte("second-life")); err != nil {
		t.Fatalf("send: %v", err)
	}
	sess2, err := mux.Accept()
	if err != nil {
		t.Fatalf("re-accept: %v", err)
	}
	got, err := sess2.RecvTimeout(2 * time.Second)
	if err != nil || string(got) != "second-life" {
		t.Fatalf("re-accepted recv = %q, %v", got, err)
	}
	if got := sess2.(*muxConn).RemoteAddr().String(); got != c.LocalAddr().String() {
		t.Fatalf("re-accepted peer = %s, want %s", got, c.LocalAddr())
	}
}

// TestUDPMuxQueueDropsWhenFull: a session queue past muxQueueDepth sheds
// datagrams instead of blocking the shared read loop — UDP semantics,
// absorbed by the ARQ layer like any wire loss.
func TestUDPMuxQueueDropsWhenFull(t *testing.T) {
	mc := &muxConn{in: make(chan []byte, muxQueueDepth), done: make(chan struct{}), timeout: time.Second}
	for i := 0; i < muxQueueDepth+16; i++ {
		mc.deliver([]byte{byte(i)}) // must never block
	}
	for i := 0; i < muxQueueDepth; i++ {
		got, err := mc.RecvTimeout(time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("recv %d = %d: drop was not tail-drop", i, got[0])
		}
	}
	if _, err := mc.RecvTimeout(20 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("queue should hold exactly %d datagrams", muxQueueDepth)
	}
}

// TestUDPMuxCloseClosesSessions: closing the mux fails pending Accepts
// and closes every live session (after draining what already arrived).
func TestUDPMuxCloseClosesSessions(t *testing.T) {
	mux, err := ListenUDPMux("127.0.0.1:0")
	if err != nil {
		t.Fatalf("mux: %v", err)
	}
	c, sess := muxClient(t, mux, "doomed")
	defer func() { _ = c.Close() }()

	acceptErr := make(chan error, 1)
	go func() {
		_, err := mux.Accept()
		acceptErr <- err
	}()

	if err := mux.Close(); err != nil {
		t.Fatalf("mux close: %v", err)
	}
	if err := mux.Close(); err != nil {
		t.Fatalf("second mux close: %v", err)
	}
	select {
	case err := <-acceptErr:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("pending accept = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending accept did not fail")
	}
	if err := sess.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("session send after mux close = %v, want ErrClosed", err)
	}
	if _, err := sess.RecvTimeout(50 * time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Fatalf("session recv after mux close = %v, want ErrClosed", err)
	}
}

// TestUDPMuxGhostDatagramAfterClose: a datagram delivered to a closed
// session vanishes (indistinguishable from wire loss) instead of leaking
// into a queue nobody reads.
func TestUDPMuxGhostDatagramAfterClose(t *testing.T) {
	mc := &muxConn{mux: &UDPMux{sessions: map[string]*muxConn{}}, in: make(chan []byte, muxQueueDepth), done: make(chan struct{}), timeout: time.Second}
	if err := mc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	mc.deliver([]byte("ghost"))
	if len(mc.in) != 0 {
		t.Fatalf("closed session queued a datagram")
	}
}

// TestUDPMuxAddr: the mux reports the bound UDP address.
func TestUDPMuxAddr(t *testing.T) {
	mux, err := ListenUDPMux("127.0.0.1:0")
	if err != nil {
		t.Fatalf("mux: %v", err)
	}
	defer func() { _ = mux.Close() }()
	addr, ok := mux.Addr().(*net.UDPAddr)
	if !ok || addr.Port == 0 {
		t.Fatalf("mux addr = %v", mux.Addr())
	}
}
