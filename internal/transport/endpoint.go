package transport

import (
	"fmt"
	"net"
	"net/url"
	"sort"
	"strings"
	"sync"
)

// EndpointHandler implements one endpoint scheme for the Dial/Listen
// registry. Either function may be nil when the scheme supports only one
// direction (none of the built-ins do).
type EndpointHandler struct {
	Dial   func(u *url.URL) (Conn, error)
	Listen func(u *url.URL) (Listener, error)
}

var (
	schemeMu sync.RWMutex
	schemes  = map[string]EndpointHandler{}
)

// RegisterScheme installs the handler for one endpoint scheme ("tcp",
// "udp", "mem", "lora", ...). Like database/sql driver registration it
// runs from package init: the transport package registers the socket
// schemes itself, and packages that would create an import cycle if
// transport depended on them (internal/lora) self-register when linked.
// Re-registering a scheme panics — two owners for one name is a wiring
// bug, not a runtime condition.
func RegisterScheme(name string, h EndpointHandler) {
	schemeMu.Lock()
	defer schemeMu.Unlock()
	if _, dup := schemes[name]; dup {
		panic("transport: scheme " + name + " registered twice")
	}
	schemes[name] = h
}

// Schemes returns the registered endpoint scheme names, sorted.
func Schemes() []string {
	schemeMu.RLock()
	defer schemeMu.RUnlock()
	out := make([]string, 0, len(schemes))
	for name := range schemes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ErrUnknownScheme reports an endpoint whose scheme no registered
// handler answers to; Known lists the valid schemes.
type ErrUnknownScheme struct {
	Scheme string
	Known  []string
}

func (e *ErrUnknownScheme) Error() string {
	return fmt.Sprintf("transport: unknown endpoint scheme %q; known schemes: %s",
		e.Scheme, strings.Join(e.Known, ", "))
}

// parseEndpoint resolves an endpoint string to its URL and handler.
func parseEndpoint(endpoint string) (*url.URL, EndpointHandler, error) {
	u, err := url.Parse(endpoint)
	if err != nil || u.Scheme == "" {
		return nil, EndpointHandler{}, fmt.Errorf("transport: endpoint %q is not a scheme://address URL (e.g. tcp://127.0.0.1:9300)", endpoint)
	}
	schemeMu.RLock()
	h, ok := schemes[u.Scheme]
	schemeMu.RUnlock()
	if !ok {
		return nil, EndpointHandler{}, &ErrUnknownScheme{Scheme: u.Scheme, Known: Schemes()}
	}
	return u, h, nil
}

// Dial connects to an endpoint by its URL: tcp://host:port,
// udp://host:port, mem://name, lora://medium[/device]. This is the one
// client entry point the CLIs use; the per-transport constructors
// (DialTCP, DialUDP) remain for callers that need transport-specific
// knobs.
func Dial(endpoint string) (Conn, error) {
	u, h, err := parseEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	if h.Dial == nil {
		return nil, fmt.Errorf("transport: scheme %q does not support dialing", u.Scheme)
	}
	return h.Dial(u)
}

// Listen binds a listener for an endpoint by its URL; see Dial for the
// accepted forms. tcp:// yields the framed TCP listener, udp:// the UDP
// session demultiplexer, mem:// an in-process broker, lora:// the
// shared-medium gateway.
func Listen(endpoint string) (Listener, error) {
	u, h, err := parseEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	if h.Listen == nil {
		return nil, fmt.Errorf("transport: scheme %q does not support listening", u.Scheme)
	}
	return h.Listen(u)
}

func init() {
	RegisterScheme("tcp", EndpointHandler{
		Dial:   func(u *url.URL) (Conn, error) { return DialTCP(u.Host) },
		Listen: func(u *url.URL) (Listener, error) { return ListenTCP(u.Host) },
	})
	RegisterScheme("udp", EndpointHandler{
		Dial:   func(u *url.URL) (Conn, error) { return DialUDP(":0", u.Host) },
		Listen: func(u *url.URL) (Listener, error) { return ListenUDPMux(u.Host) },
	})
	RegisterScheme("mem", EndpointHandler{
		Dial:   func(u *url.URL) (Conn, error) { return dialMem(memName(u)) },
		Listen: func(u *url.URL) (Listener, error) { return listenMem(memName(u)) },
	})
}

// ---------------------------------------------------------------------
// mem:// — a named in-process rendezvous over memConn pairs, so tests
// and single-process deployments address the in-memory transport through
// the same endpoint strings as the socket ones.
// ---------------------------------------------------------------------

// memName canonicalizes mem://name[/sub] to its broker key.
func memName(u *url.URL) string {
	name := u.Host
	if p := strings.Trim(u.Path, "/"); p != "" {
		name += "/" + p
	}
	if name == "" {
		name = "default"
	}
	return name
}

var memBroker = struct {
	sync.Mutex
	listeners map[string]*MemListener
}{listeners: map[string]*MemListener{}}

// memAddr is the net.Addr of a mem:// listener.
type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

// MemListener accepts in-process connections dialed to its mem:// name.
type MemListener struct {
	name    string
	backlog chan Conn
	done    chan struct{}
	once    sync.Once
}

func listenMem(name string) (Listener, error) {
	memBroker.Lock()
	defer memBroker.Unlock()
	if _, taken := memBroker.listeners[name]; taken {
		return nil, fmt.Errorf("transport: mem://%s is already listening", name)
	}
	l := &MemListener{
		name:    name,
		backlog: make(chan Conn, 64),
		done:    make(chan struct{}),
	}
	memBroker.listeners[name] = l
	return l, nil
}

func dialMem(name string) (Conn, error) {
	memBroker.Lock()
	l, ok := memBroker.listeners[name]
	memBroker.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: nothing is listening on mem://%s", name)
	}
	client, server := Pair()
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		_ = client.Close()
		return nil, fmt.Errorf("%w: mem://%s listener closed", ErrClosed, name)
	}
}

// Accept implements Listener.
func (l *MemListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

// Addr implements Listener.
func (l *MemListener) Addr() net.Addr { return memAddr("mem://" + l.name) }

// Close implements Listener: deregisters the name and fails pending and
// future Accepts with ErrClosed. Idempotent, like every Close here.
func (l *MemListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		memBroker.Lock()
		if memBroker.listeners[l.name] == l {
			delete(memBroker.listeners, l.name)
		}
		memBroker.Unlock()
	})
	return nil
}
