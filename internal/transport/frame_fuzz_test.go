package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"hash/crc32"
	"testing"
)

// fuzzEnvelope mirrors the protocol layer's Envelope shape so the fuzz
// corpus starts from realistic framed traffic — the same seeds the
// protocol's FuzzDecode grows from, wrapped in the TCP frame format.
// (Importing the protocol package here would create an import cycle of
// intent, not of code: the transport must stay payload-agnostic.)
type fuzzEnvelope struct {
	Type     int
	Session  string
	Seq      uint64
	Window   int
	Indices  []int
	Code     []float64
	MAC      []byte
	Round    int
	Accepted bool
	Windows  []int
	Counts   []int
}

// frameSeed encodes e the way the wire sees it: CRC32-prefixed gob (the
// protocol envelope encoding) framed for the TCP stream.
func frameSeed(f *testing.F, e fuzzEnvelope) []byte {
	f.Helper()
	var buf bytes.Buffer
	buf.Write(make([]byte, 4))
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		f.Fatal(err)
	}
	payload := buf.Bytes()
	binary.BigEndian.PutUint32(payload[:4], crc32.ChecksumIEEE(payload[4:]))
	framed, err := AppendFrame(nil, payload)
	if err != nil {
		f.Fatal(err)
	}
	return framed
}

// FuzzTCPFrameDecode hammers the frame decoder with adversarial streams.
// Invariants: it never panics, never returns a payload beyond the decode
// cap (so a hostile header cannot drive allocations), never claims to
// have consumed bytes it was not given, and every accepted frame
// re-encodes byte-identically (the format is canonical).
func FuzzTCPFrameDecode(f *testing.F) {
	seeds := []fuzzEnvelope{
		{Type: 1, Session: "s", Seq: 1, Window: 3, Indices: []int{1, 2, 3}},
		{Type: 4, Session: "sess-1", Seq: 9, Indices: []int{0, 31}},
		{Type: 2, Session: "s", Seq: 2, Round: 1, Code: []float64{0.5, -1.25}, MAC: bytes.Repeat([]byte{7}, 16), Windows: []int{0, 1}, Counts: []int{40, 24}},
		{Type: 3, Session: "s", Seq: 3, Round: 1, MAC: make([]byte, 16)},
		{Type: 5, Session: "s", Seq: 4, Round: 1, Accepted: true},
	}
	for _, e := range seeds {
		framed := frameSeed(f, e)
		f.Add(framed)
		// Mutated-valid variants: corrupt CRC, truncated, concatenated.
		mut := append([]byte(nil), framed...)
		mut[len(mut)/2] ^= 0xA5
		f.Add(mut)
		f.Add(framed[:len(framed)/2])
		f.Add(append(append([]byte(nil), framed...), framed...))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0xFF}, frameHeaderLen)) // huge declared length
	hdr := make([]byte, frameHeaderLen)
	binary.BigEndian.PutUint32(hdr[:4], MaxFrameBytes) // max-size declaration, no body
	f.Add(hdr)
	empty, err := AppendFrame(nil, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty) // zero-length payload is a legal frame

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, max := range []int{MaxFrameBytes, 1 << 10, 64, 0, -1} {
			payload, n, err := DecodeFrame(data, max)
			effMax := max
			if effMax <= 0 || effMax > MaxFrameBytes {
				effMax = MaxFrameBytes
			}
			if err != nil {
				if !errors.Is(err, ErrFrame) {
					t.Fatalf("max=%d: error %v does not wrap ErrFrame", max, err)
				}
				if payload != nil || n != 0 {
					t.Fatalf("max=%d: poisoned stream returned payload=%v n=%d", max, payload, n)
				}
				continue
			}
			if payload == nil {
				if n != 0 {
					t.Fatalf("max=%d: incomplete frame consumed %d bytes", max, n)
				}
				continue
			}
			if len(payload) > effMax {
				t.Fatalf("max=%d: payload %d bytes exceeds cap %d", max, len(payload), effMax)
			}
			if n < frameHeaderLen || n > len(data) {
				t.Fatalf("max=%d: consumed %d of %d bytes", max, n, len(data))
			}
			reframed, err := AppendFrame(nil, payload)
			if err != nil {
				t.Fatalf("max=%d: accepted payload does not re-encode: %v", max, err)
			}
			if !bytes.Equal(reframed, data[:n]) {
				t.Fatalf("max=%d: frame is not canonical", max)
			}
			// The payload must be an independent copy: mutating the input
			// afterwards cannot reach it (the TCP conn recycles its buffer).
			if len(payload) > 0 {
				before := payload[0]
				data[frameHeaderLen] ^= 0xFF
				if payload[0] != before {
					t.Fatalf("max=%d: payload aliases the input buffer", max)
				}
				data[frameHeaderLen] ^= 0xFF
			}
		}
	})
}

// TestFrameDecodeDoesNotAllocateOnHostileHeader pins the decode-cap
// guarantee down to the allocator: headers declaring huge payloads are
// rejected (or left pending) without the payload ever being allocated.
func TestFrameDecodeDoesNotAllocateOnHostileHeader(t *testing.T) {
	// Incomplete frame with a max-size declaration: no error, no payload,
	// and — the point — zero allocations while waiting for more bytes.
	pending := make([]byte, frameHeaderLen)
	binary.BigEndian.PutUint32(pending[:4], MaxFrameBytes)
	if n := testing.AllocsPerRun(100, func() {
		payload, n, err := DecodeFrame(pending, MaxFrameBytes)
		if payload != nil || n != 0 || err != nil {
			t.Fatalf("pending frame: payload=%v n=%d err=%v", payload, n, err)
		}
	}); n != 0 {
		t.Fatalf("pending max-size frame allocated %.1f times per decode", n)
	}

	// Oversized declaration against a small cap: the error path allocates
	// only the error value itself, never a payload-sized buffer.
	hostile := make([]byte, frameHeaderLen+64)
	binary.BigEndian.PutUint32(hostile[:4], MaxFrameBytes)
	if n := testing.AllocsPerRun(100, func() {
		payload, _, err := DecodeFrame(hostile, 1024)
		if payload != nil || !errors.Is(err, ErrFrame) {
			t.Fatalf("hostile frame: payload=%v err=%v", payload, err)
		}
	}); n > 8 {
		t.Fatalf("hostile header allocated %.1f times per decode (payload-sized buffer leaked through?)", n)
	}
}

// TestFrameRoundTrip pins the happy path: append then decode returns the
// payload and consumes exactly the frame.
func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("frame"), 1000)} {
		framed, err := AppendFrame(nil, payload)
		if err != nil {
			t.Fatalf("append %d bytes: %v", len(payload), err)
		}
		got, n, err := DecodeFrame(append(framed, "trailing"...), MaxFrameBytes)
		if err != nil {
			t.Fatalf("decode %d bytes: %v", len(payload), err)
		}
		if n != len(framed) {
			t.Fatalf("consumed %d, want %d", n, len(framed))
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("roundtrip mismatch: %d vs %d bytes", len(got), len(payload))
		}
	}
	if _, err := AppendFrame(nil, make([]byte, MaxFrameBytes+1)); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversize append = %v, want ErrFrame", err)
	}
}
