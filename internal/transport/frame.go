// TCP stream framing for message-oriented Conns.
//
// TCP delivers a byte stream, but the protocol layer speaks in discrete
// envelopes, so the stream is cut into frames: a fixed 8-byte header —
// payload length then CRC32-IEEE over the payload, both big-endian —
// followed by the payload itself. The CRC mirrors the protocol
// envelopes' own framing: corruption is detected at the transport
// boundary and surfaces as loss (the ARQ layer retransmits) rather than
// leaking altered bytes upward. The length field is validated against a
// hard cap *before* any payload allocation, so a hostile header cannot
// drive memory growth.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// MaxFrameBytes bounds one TCP frame payload. It matches the protocol
// layer's MaxEnvelopeBytes: nothing legitimate is larger.
const MaxFrameBytes = 1 << 20

// frameHeaderLen is the fixed frame header size: 4 bytes payload length
// plus 4 bytes CRC32.
const frameHeaderLen = 8

// ErrFrame reports a malformed frame: an oversized length field or a
// checksum mismatch. A byte stream cannot resynchronize past either, so
// the connection that observes ErrFrame is poisoned and must close.
var ErrFrame = errors.New("transport: malformed frame")

// AppendFrame appends the framed encoding of payload to dst and returns
// the extended slice. It fails only when the payload exceeds
// MaxFrameBytes, which would be undecodable on the other side.
func AppendFrame(dst, payload []byte) ([]byte, error) {
	if len(payload) > MaxFrameBytes {
		return dst, fmt.Errorf("%w: payload %d bytes exceeds cap %d", ErrFrame, len(payload), MaxFrameBytes)
	}
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// DecodeFrame decodes the first frame in buf. Three outcomes:
//
//   - (payload, n, nil): one complete, checksummed frame occupied
//     buf[:n]; payload is an independent copy.
//   - (nil, 0, nil): buf holds only a prefix of a frame — read more.
//   - (nil, 0, err): the stream is poisoned (length beyond max, or CRC
//     mismatch); err wraps ErrFrame.
//
// The declared length is checked against max before any allocation, so
// adversarial headers cannot force large buffers into existence. The
// function is pure — it never mutates buf — which is what makes it
// directly fuzzable.
func DecodeFrame(buf []byte, max int) ([]byte, int, error) {
	if max <= 0 || max > MaxFrameBytes {
		max = MaxFrameBytes
	}
	if len(buf) < frameHeaderLen {
		return nil, 0, nil
	}
	size := binary.BigEndian.Uint32(buf[:4])
	if size > uint32(max) {
		return nil, 0, fmt.Errorf("%w: declared payload %d bytes exceeds cap %d", ErrFrame, size, max)
	}
	total := frameHeaderLen + int(size)
	if len(buf) < total {
		return nil, 0, nil
	}
	body := buf[frameHeaderLen:total]
	if want := binary.BigEndian.Uint32(buf[4:8]); want != crc32.ChecksumIEEE(body) {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrFrame)
	}
	payload := make([]byte, len(body))
	copy(payload, body)
	return payload, total, nil
}
