// Package quantize converts channel measurements into key bits. It
// provides the three quantizers the paper and its baselines use:
//
//   - MultiBit: the adaptive multi-bit quantizer of Jana et al.
//     (MobiCom'09) with Gray coding and an optional guard band — used by
//     Bob in Vehicle-Key (to produce the network's training targets) and
//     by the LoRa-Key and Han et al. baselines;
//   - MeanThreshold: the classic single-threshold 1-bit quantizer;
//   - Interval: the interval/round quantizer used to model the Gao et al.
//     baseline's low-rate bit extraction.
package quantize

import (
	"errors"
	"math"

	"repro/internal/mathx"
)

const sqrt2 = math.Sqrt2

func erfc(x float64) float64 { return math.Erfc(x) }

// MultiBitConfig parameterizes the adaptive multi-bit quantizer.
type MultiBitConfig struct {
	// BitsPerSample is b: each kept sample yields b Gray-coded bits
	// (2^b quantization levels). The paper's pipeline uses b = 2.
	BitsPerSample int
	// GuardRatio is α, the ratio of guard band to data: samples within
	// α/2 of a level boundary (in value space, relative to the local
	// level width) are dropped. α = 0 keeps every sample, which is what
	// the Vehicle-Key training targets use; LoRa-Key tunes α = 0.8.
	GuardRatio float64
	// BlockSize is the number of samples per adaptive block; quantile
	// boundaries are recomputed per block so slow trends (path loss) do
	// not leak into the bits. 0 means one block over the whole input.
	BlockSize int
	// Thresholds, when non-nil, fixes the level boundaries globally
	// (len = 2^BitsPerSample − 1, ascending) instead of estimating
	// per-block quantiles. Vehicle-Key quantizes z-normalized features
	// against the standard-normal quantile boundaries: empirical per-block
	// quantiles jitter with the measuring side's own noise, which injects
	// label noise into every bit of the other side's targets.
	Thresholds []float64
	// NaturalCoding emits plain binary level codes instead of Gray codes.
	// Guard banding keeps extreme levels more often than inner ones
	// (their outer tails have no boundary to guard); under that kept
	// distribution (p, q, q, p) the Gray LSB is biased toward 0, while
	// both natural-binary bits stay balanced. Vehicle-Key uses natural
	// coding for unbiased key material; the baselines keep the Gray
	// coding their papers specify.
	NaturalCoding bool
}

// DefaultMultiBit returns the configuration Vehicle-Key uses for Bob's
// quantizer: 2 bits per sample, no guard band, 32-sample blocks.
func DefaultMultiBit() MultiBitConfig {
	return MultiBitConfig{BitsPerSample: 2, GuardRatio: 0, BlockSize: 32}
}

// Result is the quantizer output: the bit string and the indices of the
// samples that produced it (needed by guard-banded schemes, where the two
// parties exchange kept-index lists and intersect them).
type Result struct {
	Bits []byte
	Kept []int
}

// MultiBit quantizes xs with cfg.
func MultiBit(xs []float64, cfg MultiBitConfig) (Result, error) {
	if cfg.BitsPerSample < 1 || cfg.BitsPerSample > 8 {
		return Result{}, errors.New("quantize: BitsPerSample must be 1..8")
	}
	if cfg.GuardRatio < 0 || cfg.GuardRatio >= 1 {
		return Result{}, errors.New("quantize: GuardRatio must be in [0,1)")
	}
	block := cfg.BlockSize
	if block <= 0 || block > len(xs) {
		block = len(xs)
	}
	if block == 0 {
		return Result{}, mathx.ErrEmptyInput
	}
	levels := 1 << cfg.BitsPerSample
	var res Result
	for lo := 0; lo < len(xs); lo += block {
		hi := lo + block
		if hi > len(xs) {
			hi = len(xs)
		}
		quantizeBlock(xs[lo:hi], lo, levels, cfg, &res)
	}
	return res, nil
}

// GaussianThresholds returns the standard-normal quantile boundaries for
// 2^bits levels (e.g. bits=2 → [−0.6745, 0, 0.6745]), the fixed
// thresholds Vehicle-Key applies to z-normalized arRSSI.
func GaussianThresholds(bits int) []float64 {
	levels := 1 << bits
	out := make([]float64, levels-1)
	for i := 1; i < levels; i++ {
		out[i-1] = normalQuantile(float64(i) / float64(levels))
	}
	return out
}

// normalQuantile inverts the standard normal CDF by bisection (plenty for
// threshold setup, which runs once).
func normalQuantile(p float64) float64 {
	lo, hi := -8.0, 8.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if 0.5*erfc(-mid/sqrt2) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func quantizeBlock(xs []float64, offset, levels int, cfg MultiBitConfig, res *Result) {
	bounds := cfg.Thresholds
	if bounds == nil {
		bounds = mathx.Quantiles(xs, levels)
	}
	if bounds == nil {
		// Degenerate block (too small): mean threshold fallback.
		m := mathx.Mean(xs)
		for i, x := range xs {
			b := byte(0)
			if x > m {
				b = 1
			}
			for k := 0; k < cfg.BitsPerSample; k++ {
				res.Bits = append(res.Bits, b)
			}
			res.Kept = append(res.Kept, offset+i)
		}
		return
	}
	lo, hi := mathx.MinMax(xs)
	if cfg.Thresholds != nil {
		// Fixed thresholds: pad the edge levels with the inner width so
		// guard margins are defined everywhere. The edge levels'
		// untouched outer tails keep more mass than the guard-trimmed
		// inner levels, which biases kept samples toward extreme levels;
		// natural coding keeps the per-bit marginals balanced under that
		// skew, and the residual within-sample structure is absorbed by
		// privacy amplification (see amplify.ExtractableBits). Capping
		// the tails to equalize levels was evaluated and rejected: it
		// parks the kept samples next to decision boundaries and
		// collapses agreement.
		if len(bounds) > 1 {
			w := bounds[1] - bounds[0]
			lo, hi = bounds[0]-w, bounds[len(bounds)-1]+w
		} else {
			lo, hi = bounds[0]-1, bounds[0]+1
		}
	}
	for i, x := range xs {
		level := 0
		for level < len(bounds) && x > bounds[level] {
			level++
		}
		if cfg.GuardRatio > 0 && inGuardBand(x, level, bounds, lo, hi, cfg.GuardRatio) {
			continue
		}
		if cfg.NaturalCoding {
			res.Bits = append(res.Bits, naturalBits(uint64(level), cfg.BitsPerSample)...)
		} else {
			res.Bits = append(res.Bits, mathx.GrayBits(uint64(level), cfg.BitsPerSample)...)
		}
		res.Kept = append(res.Kept, offset+i)
	}
}

// naturalBits returns the plain binary code of n, MSB first.
func naturalBits(n uint64, width int) []byte {
	out := make([]byte, width)
	for i := 0; i < width; i++ {
		out[i] = byte(n >> uint(width-1-i) & 1)
	}
	return out
}

// inGuardBand reports whether x lies within the guard margin of either
// boundary of its level. The margin is α/2 of the local level width.
func inGuardBand(x float64, level int, bounds []float64, lo, hi, alpha float64) bool {
	left := lo
	if level > 0 {
		left = bounds[level-1]
	}
	right := hi
	if level < len(bounds) {
		right = bounds[level]
	}
	width := right - left
	if width <= 0 {
		return false
	}
	margin := alpha / 2 * width
	if level > 0 && x-left < margin {
		return true
	}
	if level < len(bounds) && right-x < margin {
		return true
	}
	return false
}

// IntersectKept restricts two quantizer results to the sample indices both
// parties kept, returning the aligned bit strings. This models the public
// index-exchange step of guard-banded schemes.
func IntersectKept(a, b Result, bitsPerSample int) (bitsA, bitsB []byte) {
	posA := make(map[int]int, len(a.Kept))
	for i, idx := range a.Kept {
		posA[idx] = i
	}
	for j, idx := range b.Kept {
		if i, ok := posA[idx]; ok {
			bitsA = append(bitsA, a.Bits[i*bitsPerSample:(i+1)*bitsPerSample]...)
			bitsB = append(bitsB, b.Bits[j*bitsPerSample:(j+1)*bitsPerSample]...)
		}
	}
	return bitsA, bitsB
}

// MeanThreshold emits one bit per sample: 1 where the sample exceeds its
// block mean.
func MeanThreshold(xs []float64, blockSize int) []byte {
	if blockSize <= 0 || blockSize > len(xs) {
		blockSize = len(xs)
	}
	out := make([]byte, 0, len(xs))
	for lo := 0; lo < len(xs); lo += blockSize {
		hi := lo + blockSize
		if hi > len(xs) {
			hi = len(xs)
		}
		m := mathx.Mean(xs[lo:hi])
		for _, x := range xs[lo:hi] {
			if x > m {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		}
	}
	return out
}

// Interval models the Gao et al. model-based extraction: the series is
// smoothed over `interval` samples, one representative is drawn per
// interval, and mean-threshold bits are emitted in rounds of `rounds`
// representatives (the per-round threshold window). Its bit yield is
// len(xs)/interval — deliberately low, matching the baseline's limited
// key generation rate.
func Interval(xs []float64, interval, rounds int) []byte {
	if interval <= 0 {
		interval = 20
	}
	if rounds <= 0 {
		rounds = 50
	}
	// Smooth then downsample.
	reps := make([]float64, 0, len(xs)/interval+1)
	for lo := 0; lo+interval <= len(xs); lo += interval {
		reps = append(reps, mathx.Mean(xs[lo:lo+interval]))
	}
	if len(reps) == 0 {
		return nil
	}
	return MeanThreshold(reps, rounds)
}
