package quantize

import "testing"

// FuzzMultiBit checks the quantizer's structural invariants on arbitrary
// inputs: bit/kept length agreement, kept indices strictly increasing and
// in range, all bit values 0/1.
func FuzzMultiBit(f *testing.F) {
	f.Add([]byte{10, 20, 30, 250, 0, 128}, uint8(2), uint8(40))
	f.Add([]byte{1}, uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, bps, guard uint8) {
		if len(raw) == 0 {
			return
		}
		xs := make([]float64, len(raw))
		for i, b := range raw {
			xs[i] = float64(b)/16 - 8
		}
		cfg := MultiBitConfig{
			BitsPerSample: int(bps%8) + 1,
			GuardRatio:    float64(guard%100) / 100,
			BlockSize:     32,
		}
		res, err := MultiBit(xs, cfg)
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if len(res.Bits) != len(res.Kept)*cfg.BitsPerSample {
			t.Fatalf("bits %d != kept %d × %d", len(res.Bits), len(res.Kept), cfg.BitsPerSample)
		}
		prev := -1
		for _, k := range res.Kept {
			if k <= prev || k >= len(xs) {
				t.Fatalf("kept index %d out of order/range", k)
			}
			prev = k
		}
		for _, b := range res.Bits {
			if b > 1 {
				t.Fatalf("bit value %d", b)
			}
		}
	})
}
