package quantize

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestMultiBitNoGuardKeepsEverything(t *testing.T) {
	src := rng.New(1)
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = src.Normal(0, 1)
	}
	res, err := MultiBit(xs, MultiBitConfig{BitsPerSample: 2, BlockSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept) != 64 || len(res.Bits) != 128 {
		t.Fatalf("kept %d bits %d, want 64/128", len(res.Kept), len(res.Bits))
	}
}

func TestMultiBitGuardDropsSamples(t *testing.T) {
	src := rng.New(2)
	xs := make([]float64, 256)
	for i := range xs {
		xs[i] = src.Normal(0, 1)
	}
	res0, _ := MultiBit(xs, MultiBitConfig{BitsPerSample: 2, BlockSize: 32})
	res5, _ := MultiBit(xs, MultiBitConfig{BitsPerSample: 2, GuardRatio: 0.5, BlockSize: 32})
	if len(res5.Kept) >= len(res0.Kept) {
		t.Errorf("guard band should drop samples: %d vs %d", len(res5.Kept), len(res0.Kept))
	}
	if len(res5.Kept) == 0 {
		t.Error("guard 0.5 should not drop everything")
	}
}

func TestMultiBitMonotone(t *testing.T) {
	// Larger values never map to smaller levels (natural coding makes
	// level order readable from the bits).
	f := func(seed int64) bool {
		src := rng.New(seed)
		xs := make([]float64, 32)
		for i := range xs {
			xs[i] = src.Normal(0, 1)
		}
		res, err := MultiBit(xs, MultiBitConfig{
			BitsPerSample: 2, BlockSize: 32, NaturalCoding: true,
			Thresholds: GaussianThresholds(2),
		})
		if err != nil {
			return false
		}
		level := func(i int) int {
			return int(res.Bits[2*i])<<1 | int(res.Bits[2*i+1])
		}
		for i := range res.Kept {
			for j := range res.Kept {
				a, b := res.Kept[i], res.Kept[j]
				if xs[a] < xs[b] && level(i) > level(j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGaussianThresholds(t *testing.T) {
	th := GaussianThresholds(2)
	want := []float64{-0.6745, 0, 0.6745}
	for i := range th {
		if math.Abs(th[i]-want[i]) > 1e-3 {
			t.Errorf("threshold %d = %v, want %v", i, th[i], want[i])
		}
	}
}

func TestIntersectKept(t *testing.T) {
	a := Result{Bits: []byte{0, 0, 0, 1, 1, 0}, Kept: []int{0, 2, 5}}
	b := Result{Bits: []byte{1, 1, 0, 0}, Kept: []int{2, 9}}
	ba, bb := IntersectKept(a, b, 2)
	if len(ba) != 2 || len(bb) != 2 {
		t.Fatalf("intersection lengths %d/%d, want 2/2", len(ba), len(bb))
	}
	if ba[0] != 0 || ba[1] != 1 || bb[0] != 1 || bb[1] != 1 {
		t.Errorf("intersected bits = %v / %v", ba, bb)
	}
}

func TestMeanThreshold(t *testing.T) {
	bits := MeanThreshold([]float64{1, 2, 3, 10}, 4)
	want := []byte{0, 0, 0, 1}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bits = %v, want %v", bits, want)
		}
	}
}

func TestIntervalYield(t *testing.T) {
	src := rng.New(3)
	xs := make([]float64, 600)
	for i := range xs {
		xs[i] = src.Normal(0, 1)
	}
	bits := Interval(xs, 6, 50)
	if len(bits) != 100 {
		t.Errorf("interval yield %d bits, want 100", len(bits))
	}
}

func TestMultiBitValidation(t *testing.T) {
	if _, err := MultiBit([]float64{1}, MultiBitConfig{BitsPerSample: 0}); err == nil {
		t.Error("zero bits per sample must be rejected")
	}
	if _, err := MultiBit([]float64{1}, MultiBitConfig{BitsPerSample: 2, GuardRatio: 1.5}); err == nil {
		t.Error("guard ratio ≥1 must be rejected")
	}
	if _, err := MultiBit(nil, MultiBitConfig{BitsPerSample: 2}); err == nil {
		t.Error("empty input must be rejected")
	}
}

func TestNaturalVsGrayBitBalance(t *testing.T) {
	// Under heavy guard banding, natural coding keeps both bit positions
	// balanced while Gray coding biases the LSB — the property the
	// pipeline depends on for key randomness.
	src := rng.New(4)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = src.Normal(0, 1)
	}
	count := func(natural bool) (b0, b1 float64) {
		res, err := MultiBit(xs, MultiBitConfig{
			BitsPerSample: 2, GuardRatio: 0.8, BlockSize: 32,
			Thresholds: GaussianThresholds(2), NaturalCoding: natural,
		})
		if err != nil {
			t.Fatal(err)
		}
		n := len(res.Kept)
		for i := 0; i < n; i++ {
			b0 += float64(res.Bits[2*i])
			b1 += float64(res.Bits[2*i+1])
		}
		return b0 / float64(n), b1 / float64(n)
	}
	nb0, nb1 := count(true)
	_, gb1 := count(false)
	if math.Abs(nb0-0.5) > 0.05 || math.Abs(nb1-0.5) > 0.05 {
		t.Errorf("natural coding biased: %v %v", nb0, nb1)
	}
	if math.Abs(gb1-0.5) < 0.1 {
		t.Errorf("expected Gray LSB bias under guard banding, got %v", gb1)
	}
}
