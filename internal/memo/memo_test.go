package memo

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	l := NewLRU[string, int](2)
	if _, ok := l.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	l.Put("a", 1)
	l.Put("b", 2)
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	// "a" is now most recent; inserting "c" must evict "b".
	l.Put("c", 3)
	if _, ok := l.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU order)")
	}
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("a lost after eviction: %d, %v", v, ok)
	}
	if v, ok := l.Get("c"); !ok || v != 3 {
		t.Fatalf("c missing: %d, %v", v, ok)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	st := l.Stats()
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
}

func TestLRUUpdateRefreshes(t *testing.T) {
	l := NewLRU[int, int](2)
	l.Put(1, 10)
	l.Put(2, 20)
	l.Put(1, 11) // refresh both value and recency
	l.Put(3, 30) // must evict 2, not 1
	if _, ok := l.Get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	if v, _ := l.Get(1); v != 11 {
		t.Fatalf("updated value lost: %d", v)
	}
}

// TestLRUEvictionChurn pushes far more keys than capacity and checks
// the bound holds and exactly the most recent keys survive.
func TestLRUEvictionChurn(t *testing.T) {
	const cap = 16
	l := NewLRU[int, int](cap)
	for i := 0; i < 1000; i++ {
		l.Put(i, i*i)
	}
	if l.Len() != cap {
		t.Fatalf("Len = %d, want %d", l.Len(), cap)
	}
	for i := 1000 - cap; i < 1000; i++ {
		if v, ok := l.Get(i); !ok || v != i*i {
			t.Fatalf("recent key %d missing or wrong: %d, %v", i, v, ok)
		}
	}
	if _, ok := l.Get(0); ok {
		t.Fatal("ancient key survived churn")
	}
	if st := l.Stats(); st.Evictions != 1000-cap {
		t.Fatalf("Evictions = %d, want %d", st.Evictions, 1000-cap)
	}
}

func TestGetOrCompute(t *testing.T) {
	l := NewLRU[string, string](4)
	calls := 0
	compute := func() string { calls++; return "v" }
	if got := l.GetOrCompute("k", compute); got != "v" {
		t.Fatalf("GetOrCompute = %q", got)
	}
	if got := l.GetOrCompute("k", compute); got != "v" {
		t.Fatalf("GetOrCompute (cached) = %q", got)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}

func TestPurge(t *testing.T) {
	l := NewLRU[int, int](4)
	l.Put(1, 1)
	l.Put(2, 2)
	l.Purge()
	if l.Len() != 0 {
		t.Fatalf("Len after Purge = %d", l.Len())
	}
	if _, ok := l.Get(1); ok {
		t.Fatal("purged entry still present")
	}
	l.Put(3, 3)
	if v, ok := l.Get(3); !ok || v != 3 {
		t.Fatalf("cache unusable after Purge: %d, %v", v, ok)
	}
}

// TestNilLRU: a nil cache is the documented "caching off" mode — every
// method is a safe no-op and GetOrCompute always computes.
func TestNilLRU(t *testing.T) {
	var l *LRU[int, int]
	if _, ok := l.Get(1); ok {
		t.Fatal("nil Get hit")
	}
	l.Put(1, 1)
	l.Purge()
	if l.Len() != 0 {
		t.Fatal("nil Len != 0")
	}
	if got := l.GetOrCompute(1, func() int { return 7 }); got != 7 {
		t.Fatalf("nil GetOrCompute = %d", got)
	}
	if st := l.Stats(); st != (Stats{}) {
		t.Fatalf("nil Stats = %+v", st)
	}
}

// TestLRUConcurrentSoak hammers one cache from many goroutines with
// overlapping key ranges (forcing hits, misses, and evictions to
// interleave) and verifies values stay pure. Run under -race via
// scripts/test-race.sh.
func TestLRUConcurrentSoak(t *testing.T) {
	l := NewLRU[int, string](32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := (g*37 + i) % 64 // overlapping ranges across goroutines
				want := fmt.Sprintf("v%d", k)
				got := l.GetOrCompute(k, func() string { return want })
				if got != want {
					t.Errorf("impure value for %d: %q", k, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := l.Len(); n > 32 {
		t.Fatalf("capacity exceeded under churn: %d", n)
	}
	st := l.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("soak did not exercise both paths: %+v", st)
	}
}
