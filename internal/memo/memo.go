// Package memo provides the bounded, thread-safe LRU cache behind the
// pipeline's memoized pure computations (PR 8): predictor forwards
// keyed by window fingerprint, reconciler matrices keyed by
// (salt, size), and per-vehicle SessionWindows in internal/server.
//
// Safety rests on a usage contract, not on copying: every value stored
// here must be PURE (fully determined by its key) and READ-ONLY after
// construction. Under that contract it is harmless for two goroutines
// to race on a miss — both compute the same value and either copy may
// win the Put — so GetOrCompute deliberately computes outside the lock
// and never blocks readers behind a slow derivation.
package memo

import (
	"container/list"
	"sync"
)

// Stats counts cache effectiveness. Snapshot via LRU.Stats.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// LRU is a mutex-guarded least-recently-used map with a hard capacity.
// The zero value is not usable; construct with NewLRU.
type LRU[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent
	items map[K]*list.Element
	stats Stats
}

// NewLRU returns a cache bounded to capacity entries. capacity < 1 is
// clamped to 1: a memo that can hold nothing is never what a caller
// wants, and callers that want caching off simply keep a nil *LRU
// (all methods on nil are safe no-op misses).
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{
		cap:   capacity,
		order: list.New(),
		items: make(map[K]*list.Element, capacity),
	}
}

// Get returns the cached value for key, marking it most-recently-used.
func (l *LRU[K, V]) Get(key K) (V, bool) {
	var zero V
	if l == nil {
		return zero, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[key]
	if !ok {
		l.stats.Misses++
		return zero, false
	}
	l.stats.Hits++
	l.order.MoveToFront(el)
	return el.Value.(*entry[K, V]).val, true
}

// Put inserts or refreshes key, evicting the least-recently-used entry
// when the cache is full.
func (l *LRU[K, V]) Put(key K, val V) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[key]; ok {
		el.Value.(*entry[K, V]).val = val
		l.order.MoveToFront(el)
		return
	}
	if l.order.Len() >= l.cap {
		oldest := l.order.Back()
		l.order.Remove(oldest)
		delete(l.items, oldest.Value.(*entry[K, V]).key)
		l.stats.Evictions++
	}
	l.items[key] = l.order.PushFront(&entry[K, V]{key: key, val: val})
}

// GetOrCompute returns the cached value for key or computes, stores,
// and returns it. compute runs OUTSIDE the lock: values are pure, so a
// racing duplicate computation is wasted work at worst, never a wrong
// answer, and a slow compute never stalls other keys.
func (l *LRU[K, V]) GetOrCompute(key K, compute func() V) V {
	if l == nil {
		return compute()
	}
	if v, ok := l.Get(key); ok {
		return v
	}
	v := compute()
	l.Put(key, v)
	return v
}

// Len reports the current entry count.
func (l *LRU[K, V]) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.order.Len()
}

// Purge drops every entry (stats are kept). Used when the upstream
// purity assumption breaks — e.g. a predictor retrain invalidates all
// memoized forwards.
func (l *LRU[K, V]) Purge() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.order.Init()
	clear(l.items)
}

// Stats snapshots the hit/miss/eviction counters.
func (l *LRU[K, V]) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}
