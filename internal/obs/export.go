package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// HistogramSnapshot is one histogram's state at snapshot time. Counts
// are per-bucket (not cumulative); the last entry is the +Inf bucket.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution from the bucket counts, interpolating linearly inside
// the bucket that contains the target rank — the same estimate
// Prometheus's histogram_quantile computes. Samples that landed in the
// +Inf bucket are reported as the largest finite bound (a conservative
// floor, as Prometheus does). Returns 0 when the histogram is empty.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Counts) == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := 0.0
	for i, c := range h.Counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			lower := 0.0
			if i > 0 {
				lower = h.Bounds[i-1]
			}
			if i >= len(h.Bounds) { // +Inf bucket: no finite width
				return h.Bounds[len(h.Bounds)-1]
			}
			upper := h.Bounds[i]
			return lower + (upper-lower)*(rank-cum)/float64(c)
		}
		cum = next
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a point-in-time copy of every instrument plus the trace
// ring, safe to serialize while recording continues.
type Snapshot struct {
	UptimeSeconds float64                      `json:"uptime_seconds"`
	Counters      map[string]int64             `json:"counters"`
	Gauges        map[string]float64           `json:"gauges"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`
	Events        []TraceEvent                 `json:"events"`
	DroppedEvents uint64                       `json:"dropped_events"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		UptimeSeconds: r.Uptime().Seconds(),
		Counters:      make(map[string]int64),
		Gauges:        make(map[string]float64),
		Histograms:    make(map[string]HistogramSnapshot),
	}
	r.mu.RLock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	r.mu.RUnlock()
	s.Events = r.trace.Events()
	s.DroppedEvents = r.trace.Dropped()
	return s
}

// WriteJSON renders the snapshot as indented JSON, expvar-style: one
// self-describing document with sorted keys (encoding/json sorts map
// keys), suitable for scraping or diffing.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format. Labeled names ("family{k=\"v\"}") become label sets on the
// family; histograms expand into cumulative _bucket/_sum/_count series.
// Output is sorted by name, so two snapshots of the same state are
// byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	typed := make(map[string]string) // family → TYPE already emitted

	r.mu.RLock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()

	header := func(name, kind string) error {
		fam := Family(name)
		if typed[fam] != "" {
			return nil
		}
		typed[fam] = kind
		if h := help[fam]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, h); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, kind)
		return err
	}

	for _, name := range sortedKeys(s.Counters) {
		if err := header(name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", promName(name, ""), s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := header(name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", promName(name, ""), promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		if err := header(name, "histogram"); err != nil {
			return err
		}
		h := s.Histograms[name]
		fam, lbl := Family(name), labels(name)
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			le := promFloat(bound)
			if _, err := fmt.Fprintf(w, "%s %d\n", promBucket(fam, lbl, le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", promBucket(fam, lbl, "+Inf"), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", promName(fam+"_sum", lbl), promFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", promName(fam+"_count", lbl), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName renders a series name with an optional pre-baked label block.
func promName(name, extraLabels string) string {
	fam, lbl := Family(name), labels(name)
	switch {
	case lbl == "" && extraLabels == "":
		return fam
	case lbl == "":
		return fam + "{" + extraLabels + "}"
	case extraLabels == "":
		return fam + "{" + lbl + "}"
	default:
		return fam + "{" + lbl + "," + extraLabels + "}"
	}
}

// promBucket renders one cumulative histogram bucket series name.
func promBucket(fam, lbl, le string) string {
	if lbl == "" {
		return fam + `_bucket{le="` + le + `"}`
	}
	return fam + `_bucket{` + lbl + `,le="` + le + `"}`
}

// promFloat formats a float the way Prometheus expects.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
