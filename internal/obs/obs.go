// Package obs is the repository's observability layer: a small,
// stdlib-only set of live instruments — atomic counters, gauges,
// fixed-bucket histograms, and a bounded ring-buffer event tracer —
// behind one Recorder interface that the hot layers (protocol, core
// pipeline, transport, exp engine) accept from their callers.
//
// The design contract, enforced by the vklint obsnop analyzer, is that
// instrumented packages never construct a concrete recorder themselves:
// they default to Nop (every method a no-op on a zero-size struct, so
// the uninstrumented path costs one interface call and nothing else)
// and record into whatever the caller wired in. Binaries that want live
// numbers build a *Registry, pass it down, and export it as an
// expvar-style JSON snapshot, a Prometheus text dump, or over HTTP next
// to net/http/pprof (see export.go and pprof.go).
//
// Metric identity is a flat name, optionally carrying Prometheus-style
// labels baked into the string ("vk_pipeline_phase_seconds{phase=\"quantize\"}",
// built once with Labeled, never per call). names.go holds the
// repository's metric and trace-event taxonomy.
package obs

// Recorder is the instrumentation sink threaded through the hot layers.
// Implementations must be safe for concurrent use; calls on the hot path
// must stay cheap (an atomic add, or nothing at all for Nop).
type Recorder interface {
	// Add increments the named monotonic counter.
	Add(name string, delta int64)
	// Set updates the named gauge to an instantaneous value.
	Set(name string, value float64)
	// Observe records one sample into the named histogram.
	Observe(name string, value float64)
	// Event appends a trace event (bounded ring buffer; old events are
	// overwritten, never blocking the caller).
	Event(name, detail string)
}

// NopRecorder is the zero-cost default: every method does nothing. It is
// what instrumented code runs against when no recorder is wired in, so
// the uninstrumented path stays within benchmark noise of no
// instrumentation at all.
type NopRecorder struct{}

// Add implements Recorder as a no-op.
func (NopRecorder) Add(string, int64) {}

// Set implements Recorder as a no-op.
func (NopRecorder) Set(string, float64) {}

// Observe implements Recorder as a no-op.
func (NopRecorder) Observe(string, float64) {}

// Event implements Recorder as a no-op.
func (NopRecorder) Event(string, string) {}

// Nop is the shared no-op recorder instance.
var Nop Recorder = NopRecorder{}

// OrNop normalizes an optional recorder: nil becomes Nop, so call sites
// never branch on presence.
func OrNop(r Recorder) Recorder {
	if r == nil {
		return Nop
	}
	return r
}
