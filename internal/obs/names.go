package obs

import "strings"

// Metric taxonomy. Every instrumented package records under these names,
// so operators see one stable schema regardless of which binary wired
// the registry. Families with a {label} dimension are built with
// Labeled, once, at package init of the instrumented layer.
const (
	// Protocol message-flow counters (per node).
	ProtocolSent             = "vk_protocol_sent_total"
	ProtocolRecv             = "vk_protocol_recv_total"
	ProtocolRetransmits      = "vk_protocol_retransmits_total"
	ProtocolTimeouts         = "vk_protocol_timeouts_total"
	ProtocolReplayDrops      = "vk_protocol_replay_drops_total"
	ProtocolGarbage          = "vk_protocol_garbage_total"
	ProtocolStale            = "vk_protocol_stale_total"
	ProtocolAbandonedWindows = "vk_protocol_abandoned_windows_total"
	ProtocolAbandonedRounds  = "vk_protocol_abandoned_rounds_total"
	ProtocolConfirmFailures  = "vk_protocol_confirm_failures_total"
	ProtocolKeysConfirmed    = "vk_protocol_keys_confirmed_total"
	// ProtocolRoundSeconds is the reconciliation-round latency histogram
	// (syndrome sent/received → result resolved).
	ProtocolRoundSeconds = "vk_protocol_round_seconds"

	// Pipeline per-phase families, labeled phase=<PhaseProbe…>. Seconds
	// mirror the paper's Table III phase split; bits are each phase's
	// output size.
	PipelinePhaseSeconds = "vk_pipeline_phase_seconds"
	PipelinePhaseBits    = "vk_pipeline_phase_bits"

	// TransportFaults counts injected fault outcomes, labeled
	// kind=<dropped|duplicated|reordered|corrupted|delayed|delivered>.
	TransportFaults = "vk_transport_faults_total"

	// ExpUnitSeconds is the experiment engine's per-work-unit wall time,
	// labeled exp=<fan-out label>.
	ExpUnitSeconds = "vk_exp_unit_seconds"
	// ExpSeconds is one whole experiment's wall time, labeled exp=<id>.
	ExpSeconds = "vk_exp_seconds"

	// Session-level counters (public vehiclekey API).
	SessionKeys       = "vk_session_keys_total"
	SessionKeysAgreed = "vk_session_keys_agreed_total"

	// Server session lifecycle (internal/server). The gauge tracks
	// concurrently running sessions; the counter is labeled
	// outcome=<ServerOutcomes>; the histogram is the server-observed
	// session wall time (accept → conn closed).
	ServerActiveSessions = "vk_server_active_sessions"
	ServerSessions       = "vk_server_sessions_total"
	ServerSessionSeconds = "vk_server_session_seconds"

	// LoadSessionSeconds is the client-observed session latency recorded
	// by the vkload generator (dial → outcomes returned).
	LoadSessionSeconds = "vk_load_session_seconds"

	// Cache effectiveness counters for the PR 8 memo layer, labeled
	// cache=<CacheNames>: predictor forwards keyed by window
	// fingerprint (internal/core) and per-vehicle window derivations
	// (internal/server).
	CacheHits   = "vk_cache_hits_total"
	CacheMisses = "vk_cache_misses_total"

	// NNForwardSeconds is the predictor inference latency histogram,
	// labeled path=<FastPaths> — the off/gemm/int8 fast-path split.
	NNForwardSeconds = "vk_nn_forward_seconds"

	// Shared-medium LoRa MAC counters (internal/lora medium). LoraTx is
	// labeled result=<LoraTxResults>: every transmission attempt resolves
	// to exactly one result, so delivered/(sum) is the medium's frame
	// delivery ratio.
	LoraTx = "vk_lora_tx_total"
	// LoraCADBusy counts channel-activity-detection probes that found the
	// hop channel occupied (each triggers a listen-before-talk backoff).
	LoraCADBusy = "vk_lora_cad_busy_total"
	// LoraDutyWaits counts transmissions parked waiting for duty-cycle
	// airtime credit.
	LoraDutyWaits = "vk_lora_duty_waits_total"
	// LoraAirtimeSeconds is the per-message time-on-air histogram
	// (virtual seconds, all fragments of the message summed).
	LoraAirtimeSeconds = "vk_lora_airtime_seconds"
	// LoraBackoffSeconds is the CAD backoff-draw histogram (virtual
	// seconds).
	LoraBackoffSeconds = "vk_lora_backoff_seconds"
	// LoraVirtualSeconds is the medium's virtual clock, exported as a
	// gauge so dashboards can relate counters to simulated time.
	LoraVirtualSeconds = "vk_lora_virtual_seconds"

	// Platoon group-key schedule families (internal/group). The
	// establishment counter is labeled result=<GroupResults>; the envelope
	// counter is labeled result=<GroupResults> too (acked vs failed
	// fan-out deliveries map onto ok vs failed).
	GroupEstablishments = "vk_group_establishments_total"
	GroupEnvelopes      = "vk_group_envelopes_total"
	// GroupRekeys counts completed rekey derivations (one per epoch).
	GroupRekeys = "vk_group_rekeys_total"
	// GroupLeaves counts member departures the hub processed.
	GroupLeaves = "vk_group_leaves_total"
	// GroupStaleDrops counts stale or replayed epoch envelopes members
	// rejected under the monotone-epoch rule.
	GroupStaleDrops = "vk_group_stale_drops_total"
	// GroupKeysAccepted counts group-key epochs members accepted.
	GroupKeysAccepted = "vk_group_keys_accepted_total"
	// GroupEpoch and GroupMembers gauge the hub's current key epoch and
	// live membership.
	GroupEpoch   = "vk_group_epoch"
	GroupMembers = "vk_group_members"
	// GroupEstablishSeconds is the per-member pairwise establishment wall
	// time (join frame → hub membership); GroupFanoutSeconds the
	// per-member envelope delivery latency (first send → ack);
	// GroupRekeySeconds one whole rekey wave (derive → all acks resolved).
	GroupEstablishSeconds = "vk_group_establish_seconds"
	GroupFanoutSeconds    = "vk_group_fanout_seconds"
	GroupRekeySeconds     = "vk_group_rekey_seconds"
)

// Group result labels (establishments and envelope deliveries).
const (
	GroupOK     = "ok"
	GroupFailed = "failed"
)

// GroupResults lists the group result labels.
var GroupResults = []string{GroupOK, GroupFailed}

// LoRa medium transmission results.
const (
	// LoraDelivered: the frame reached its peer intact.
	LoraDelivered = "delivered"
	// LoraCollided: a co-channel overlap destroyed the frame (no capture).
	LoraCollided = "collided"
	// LoraHalfDuplex: the receiver was transmitting while the frame was
	// on the air, so its radio never heard it.
	LoraHalfDuplex = "halfduplex"
	// LoraCADDropped: CAD found the channel busy on every attempt and the
	// sender gave the frame up (the ARQ layer recovers).
	LoraCADDropped = "cad_dropped"
	// LoraClosedDrop: the peer's link closed while the frame was on the
	// air.
	LoraClosedDrop = "closed"
)

// LoraTxResults lists the transmission-result labels.
var LoraTxResults = []string{LoraDelivered, LoraCollided, LoraHalfDuplex, LoraCADDropped, LoraClosedDrop}

// CacheNames lists the memoization caches that report hit/miss counters.
var CacheNames = []string{"predictor", "windows"}

// FastPaths lists the predictor inference paths (core.FastPath* values).
var FastPaths = []string{"off", "gemm", "int8"}

// Server session outcome labels.
const (
	// OutcomeEstablished: the session confirmed at least one key.
	OutcomeEstablished = "established"
	// OutcomeDegraded: the protocol ran to completion but confirmed
	// nothing (abandoned rounds, wire-infeasible scheme, early peer exit).
	OutcomeDegraded = "degraded"
	// OutcomeRejected: no valid handshake arrived (dead or hostile peer),
	// or the server was draining.
	OutcomeRejected = "rejected"
	// OutcomeError: the session died on a local error.
	OutcomeError = "error"
)

// ServerOutcomes lists the session outcome labels.
var ServerOutcomes = []string{OutcomeEstablished, OutcomeDegraded, OutcomeRejected, OutcomeError}

// Pipeline phase labels (the paper's Table III split).
const (
	PhaseProbe     = "probe"
	PhasePredict   = "predict"
	PhaseQuantize  = "quantize"
	PhaseReconcile = "reconcile"
	PhaseAmplify   = "amplify"
)

// Phases lists the pipeline phases in execution order.
var Phases = []string{PhaseProbe, PhasePredict, PhaseQuantize, PhaseReconcile, PhaseAmplify}

// Transport fault kinds.
var FaultKinds = []string{"dropped", "duplicated", "reordered", "corrupted", "delayed", "delivered"}

// Trace-event taxonomy.
const (
	// EvRetransmit: the ARQ layer retransmitted a cached message.
	EvRetransmit = "arq.retransmit"
	// EvBackoff: a receive deadline expired and the timeout was backed off.
	EvBackoff = "arq.backoff"
	// EvAbandon: a window or round exhausted its retries.
	EvAbandon = "arq.abandon"
	// EvRound: a reconciliation round resolved (confirmed or failed).
	EvRound = "round.done"
	// EvKey: a 128-bit session key was confirmed.
	EvKey = "round.key"
)

// Labeled bakes one Prometheus-style label into a family name:
// Labeled("f", "phase", "probe") == `f{phase="probe"}`. Build these once
// (package-level vars), not per record call.
func Labeled(family, key, value string) string {
	return family + `{` + key + `="` + value + `"}`
}

// Family strips a baked-in label block, returning the bare family name.
func Family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labels returns the inside of a name's label block ("" when unlabeled).
func labels(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return ""
	}
	return name[i+1 : len(name)-1]
}

// DeclareStandard pre-registers the full Vehicle-Key metric schema on a
// registry, so an exported snapshot always contains every family — the
// per-phase pipeline histograms, the protocol ARQ counters, the
// transport fault counters — even for runs that never touched some of
// them. Binaries call this right after NewRegistry.
func DeclareStandard(r *Registry) {
	r.DeclareCounter(ProtocolSent, "envelopes transmitted, including retransmits")
	r.DeclareCounter(ProtocolRecv, "well-formed envelopes accepted")
	r.DeclareCounter(ProtocolRetransmits, "cached messages retransmitted after a timeout or stale request")
	r.DeclareCounter(ProtocolTimeouts, "receive deadlines that expired")
	r.DeclareCounter(ProtocolReplayDrops, "envelopes rejected by the sliding replay window")
	r.DeclareCounter(ProtocolGarbage, "undecodable, wrong-session, or otherwise unusable deliveries")
	r.DeclareCounter(ProtocolStale, "well-formed duplicates of already-handled messages")
	r.DeclareCounter(ProtocolAbandonedWindows, "probing windows given up after retry exhaustion")
	r.DeclareCounter(ProtocolAbandonedRounds, "reconciliation rounds given up or never seen")
	r.DeclareCounter(ProtocolConfirmFailures, "rounds whose key confirmation was rejected")
	r.DeclareCounter(ProtocolKeysConfirmed, "128-bit session keys confirmed by both sides")
	r.DeclareHistogram(ProtocolRoundSeconds, "reconciliation round latency in seconds", DefBuckets)
	for _, ph := range Phases {
		r.DeclareHistogram(Labeled(PipelinePhaseSeconds, "phase", ph),
			"pipeline phase duration in seconds (Table III split)", DefBuckets)
		r.DeclareHistogram(Labeled(PipelinePhaseBits, "phase", ph),
			"pipeline phase output size in bits", BitBuckets)
	}
	for _, kind := range FaultKinds {
		r.DeclareCounter(Labeled(TransportFaults, "kind", kind),
			"fault-injection outcomes on the egress path")
	}
	r.DeclareCounter(SessionKeys, "keys produced by Session.GenerateKeys")
	r.DeclareCounter(SessionKeysAgreed, "keys on which both sides agreed exactly")
	r.DeclareHistogram(ExpUnitSeconds, "experiment-engine per-unit wall time in seconds", DefBuckets)
	r.DeclareHistogram(ExpSeconds, "whole-experiment wall time in seconds", DefBuckets)
	r.DeclareGauge(ServerActiveSessions, "sessions currently being served")
	for _, outcome := range ServerOutcomes {
		r.DeclareCounter(Labeled(ServerSessions, "outcome", outcome),
			"sessions resolved, by outcome")
	}
	r.DeclareHistogram(ServerSessionSeconds, "server-observed session wall time in seconds", SessionBuckets)
	r.DeclareHistogram(LoadSessionSeconds, "client-observed session latency in seconds", SessionBuckets)
	for _, cache := range CacheNames {
		r.DeclareCounter(Labeled(CacheHits, "cache", cache), "memoization cache hits")
		r.DeclareCounter(Labeled(CacheMisses, "cache", cache), "memoization cache misses")
	}
	for _, path := range FastPaths {
		r.DeclareHistogram(Labeled(NNForwardSeconds, "path", path),
			"predictor inference latency in seconds, by fast path", DefBuckets)
	}
	for _, result := range LoraTxResults {
		r.DeclareCounter(Labeled(LoraTx, "result", result),
			"shared-medium LoRa transmission attempts, by result")
	}
	r.DeclareCounter(LoraCADBusy, "CAD probes that found the hop channel busy")
	r.DeclareCounter(LoraDutyWaits, "transmissions parked for duty-cycle airtime credit")
	r.DeclareHistogram(LoraAirtimeSeconds, "per-message time-on-air in virtual seconds", DefBuckets)
	r.DeclareHistogram(LoraBackoffSeconds, "CAD listen-before-talk backoff in virtual seconds", DefBuckets)
	r.DeclareGauge(LoraVirtualSeconds, "the LoRa medium's virtual clock in seconds")
	for _, result := range GroupResults {
		r.DeclareCounter(Labeled(GroupEstablishments, "result", result),
			"platoon pairwise establishments, by result")
		r.DeclareCounter(Labeled(GroupEnvelopes, "result", result),
			"group-key envelope deliveries, by result")
	}
	r.DeclareCounter(GroupRekeys, "group rekey derivations (one per epoch)")
	r.DeclareCounter(GroupLeaves, "member departures processed by the hub")
	r.DeclareCounter(GroupStaleDrops, "stale or replayed epoch envelopes rejected by members")
	r.DeclareCounter(GroupKeysAccepted, "group-key epochs accepted by members")
	r.DeclareGauge(GroupEpoch, "the hub's current group-key epoch")
	r.DeclareGauge(GroupMembers, "members currently holding hub membership")
	r.DeclareHistogram(GroupEstablishSeconds, "per-member pairwise establishment wall time in seconds", SessionBuckets)
	r.DeclareHistogram(GroupFanoutSeconds, "per-member envelope delivery latency in seconds", DefBuckets)
	r.DeclareHistogram(GroupRekeySeconds, "whole rekey-wave wall time in seconds", DefBuckets)
}
