package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float value with atomic load/store.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: bucket i counts samples with
// value <= Bounds[i]; the final implicit bucket is +Inf. All updates are
// atomic — Observe takes no lock.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, the last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// newHistogram builds a histogram over the given ascending upper bounds.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observed samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets are the default histogram bounds: durations in seconds from
// one microsecond to over a minute, roughly geometric. Instruments that
// measure something other than time should be declared with their own
// bounds (DeclareHistogram).
var DefBuckets = []float64{
	1e-6, 5e-6, 25e-6, 1e-4, 5e-4, 2.5e-3, 1e-2, 5e-2, 0.25, 1, 5, 25, 100,
}

// BitBuckets suit bit-count histograms (pipeline phase output sizes).
var BitBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// SessionBuckets suit whole-session latency histograms: finer than
// DefBuckets between 1ms and 30s, where tail quantiles (p99) of the
// serving layer actually live.
var SessionBuckets = []float64{
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Registry is the concrete Recorder: a concurrent name → instrument map
// plus one trace ring. Instrument lookups take a read lock; the
// instruments themselves are lock-free atomics, so sustained recording
// on a known name contends only on the RWMutex read path.
type Registry struct {
	start time.Time

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string // keyed by family (label-stripped) name
	bounds   map[string][]float64

	trace *Tracer
}

// RegistryOption configures NewRegistry.
type RegistryOption func(*Registry)

// WithTraceCapacity sets the event ring size (default DefaultTraceCap).
func WithTraceCapacity(n int) RegistryOption {
	return func(r *Registry) { r.trace = NewTracer(n) }
}

// NewRegistry builds an empty registry.
func NewRegistry(opts ...RegistryOption) *Registry {
	r := &Registry{
		start:    time.Now(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
		bounds:   make(map[string][]float64),
		trace:    NewTracer(DefaultTraceCap),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// DeclareCounter pre-registers a counter and its help text, so exports
// contain the family even before the first increment.
func (r *Registry) DeclareCounter(name, help string) {
	r.mu.Lock()
	if _, ok := r.counters[name]; !ok {
		r.counters[name] = &Counter{}
	}
	r.help[Family(name)] = help
	r.mu.Unlock()
}

// DeclareGauge pre-registers a gauge and its help text.
func (r *Registry) DeclareGauge(name, help string) {
	r.mu.Lock()
	if _, ok := r.gauges[name]; !ok {
		r.gauges[name] = &Gauge{}
	}
	r.help[Family(name)] = help
	r.mu.Unlock()
}

// DeclareHistogram pre-registers a histogram with explicit bucket bounds.
// Later Observe calls on the same name use these bounds; undeclared
// histograms fall back to DefBuckets. The bounds also apply to any name
// of the same family declared afterwards.
func (r *Registry) DeclareHistogram(name, help string, bucketBounds []float64) {
	if len(bucketBounds) == 0 {
		bucketBounds = DefBuckets
	}
	r.mu.Lock()
	if _, ok := r.hists[name]; !ok {
		r.hists[name] = newHistogram(bucketBounds)
	}
	fam := Family(name)
	r.help[fam] = help
	r.bounds[fam] = append([]float64(nil), bucketBounds...)
	r.mu.Unlock()
}

// Add implements Recorder.
func (r *Registry) Add(name string, delta int64) {
	r.counter(name).Add(delta)
}

// Set implements Recorder.
func (r *Registry) Set(name string, value float64) {
	r.gauge(name).Set(value)
}

// Observe implements Recorder.
func (r *Registry) Observe(name string, value float64) {
	r.histogram(name).Observe(value)
}

// Event implements Recorder.
func (r *Registry) Event(name, detail string) {
	r.trace.Record(name, detail)
}

// Trace exposes the registry's event ring.
func (r *Registry) Trace() *Tracer { return r.trace }

// Uptime reports the monotonic time since the registry was built.
func (r *Registry) Uptime() time.Duration { return time.Since(r.start) }

func (r *Registry) counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

func (r *Registry) gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

func (r *Registry) histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	// A labeled sibling inherits its family's declared bounds.
	bounds := r.bounds[Family(name)]
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	h = newHistogram(bounds)
	r.hists[name] = h
	return h
}
