// Opt-in profiling endpoints and capture helpers. Nothing here runs
// unless a binary asks for it: the library never opens sockets or
// touches the filesystem on its own.
package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	rpprof "runtime/pprof"
	"time"
)

// DebugServer is a running debug HTTP endpoint: net/http/pprof under
// /debug/pprof/, the Prometheus text dump at /metrics, and the JSON
// snapshot at /vars.
type DebugServer struct {
	// Addr is the bound address (useful with ":0").
	Addr string

	srv *http.Server
	ln  net.Listener
}

// ServeDebug starts the debug endpoint on addr for the given registry
// and returns immediately; Close shuts it down. A nil registry serves
// only the pprof handlers.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			_ = reg.WritePrometheus(w) // a broken scrape connection is the scraper's problem
		})
		mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.WriteJSON(w)
		})
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// Serve always returns a non-nil error on Close; that shutdown
		// path is the expected exit.
		_ = srv.Serve(ln)
	}()
	return &DebugServer{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close stops the debug server.
func (s *DebugServer) Close() error { return s.srv.Close() }

// StartCPUProfile begins writing a CPU profile to path and returns the
// function that stops profiling and closes the file. Binaries defer the
// stop around their hot section.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := rpprof.StartCPUProfile(f); err != nil {
		_ = f.Close() // the create succeeded; the profile error is the one to report
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		rpprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return fmt.Errorf("obs: cpu profile: %w", err)
		}
		return nil
	}, nil
}

// WriteHeapProfile captures a heap profile to path, running a GC first
// so the numbers reflect live memory rather than garbage.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	runtime.GC()
	if err := rpprof.WriteHeapProfile(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}
