package obs

import (
	"math"
	"testing"
)

func quantileHist(t *testing.T, bounds []float64, observations []float64) HistogramSnapshot {
	t.Helper()
	r := NewRegistry()
	r.DeclareHistogram("h", "", bounds)
	for _, v := range observations {
		r.Observe("h", v)
	}
	return r.Snapshot().Histograms["h"]
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// TestQuantileEmpty: an empty histogram reports 0 for every quantile
// instead of dividing by zero or panicking on empty bucket slices.
func TestQuantileEmpty(t *testing.T) {
	h := quantileHist(t, []float64{1, 2}, nil)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("zero-value Quantile = %g, want 0", got)
	}
}

// TestQuantileInterpolation: inside one bucket the estimate interpolates
// linearly between the bucket's bounds — histogram_quantile semantics.
func TestQuantileInterpolation(t *testing.T) {
	// 100 observations, all in the (0, 1] bucket.
	h := quantileHist(t, []float64{1, 2, 4}, repeat(0.5, 100))
	cases := []struct{ q, want float64 }{
		{0.25, 0.25}, // rank 25 of 100 in a bucket spanning (0, 1]
		{0.5, 0.5},
		{0.99, 0.99},
		{1, 1}, // full rank lands on the bucket's upper bound
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

// TestQuantileAcrossBuckets: the target rank walks cumulative counts
// into the right bucket before interpolating.
func TestQuantileAcrossBuckets(t *testing.T) {
	// 90 fast observations and 10 slow ones two buckets up.
	obs := append(repeat(0.5, 90), repeat(6, 10)...)
	h := quantileHist(t, []float64{1, 2, 4, 8}, obs)

	// p50 sits in the first bucket: rank 50 of the 90 there → 50/90.
	if got, want := h.Quantile(0.5), 50.0/90.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Quantile(0.5) = %g, want %g", got, want)
	}
	// p99 sits in (4, 8]: rank 99, 90 below, 9 of 10 into the bucket.
	if got, want := h.Quantile(0.99), 4+4*0.9; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Quantile(0.99) = %g, want %g", got, want)
	}
}

// TestQuantileClamps: out-of-range q is clamped instead of extrapolated.
func TestQuantileClamps(t *testing.T) {
	h := quantileHist(t, []float64{1, 2}, repeat(0.5, 10))
	if got := h.Quantile(-3); math.Abs(got-h.Quantile(0)) > 1e-9 {
		t.Fatalf("Quantile(-3) = %g, want Quantile(0) = %g", got, h.Quantile(0))
	}
	if got := h.Quantile(7); math.Abs(got-h.Quantile(1)) > 1e-9 {
		t.Fatalf("Quantile(7) = %g, want Quantile(1) = %g", got, h.Quantile(1))
	}
}

// TestQuantileInfBucket: ranks landing in the +Inf bucket report the
// largest finite bound — a conservative floor, as Prometheus does —
// never infinity.
func TestQuantileInfBucket(t *testing.T) {
	obs := append(repeat(0.5, 50), repeat(100, 50)...) // half beyond every bound
	h := quantileHist(t, []float64{1, 2, 4, 8}, obs)
	for _, q := range []float64{0.6, 0.99, 1} {
		got := h.Quantile(q)
		if math.IsInf(got, 0) {
			t.Fatalf("Quantile(%g) = +Inf", q)
		}
		if got != 8 {
			t.Fatalf("Quantile(%g) = %g, want largest finite bound 8", q, got)
		}
	}
}
