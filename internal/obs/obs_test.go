package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	r.Add("c", 2)
	r.Add("c", 3)
	r.Set("g", 1.5)
	r.Set("g", -2.25)
	r.Observe("h", 0.5)
	r.Observe("h", 0.5)

	s := r.Snapshot()
	if s.Counters["c"] != 5 {
		t.Errorf("counter = %d, want 5", s.Counters["c"])
	}
	if s.Gauges["g"] != -2.25 {
		t.Errorf("gauge = %v, want -2.25", s.Gauges["g"])
	}
	h := s.Histograms["h"]
	if h.Count != 2 || h.Sum != 1.0 {
		t.Errorf("histogram count=%d sum=%v, want 2 and 1.0", h.Count, h.Sum)
	}
}

// TestHistogramBucketEdges pins the le semantics: a sample equal to a
// bound lands in that bound's bucket, one above the largest bound lands
// in +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	h.Observe(1)  // le="1"
	h.Observe(5)  // le="10"
	h.Observe(10) // le="10"
	h.Observe(11) // +Inf
	h.Observe(-3) // le="1"
	want := []int64{2, 2, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 24 {
		t.Errorf("sum = %v, want 24", h.Sum())
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Record("ev", fmt.Sprintf("%d", i))
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len(events) = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(2 + i)
		if ev.Seq != wantSeq || ev.Detail != fmt.Sprintf("%d", wantSeq) {
			t.Errorf("event %d = seq %d detail %q, want seq %d", i, ev.Seq, ev.Detail, wantSeq)
		}
		if i > 0 && evs[i].Offset < evs[i-1].Offset {
			t.Errorf("event %d offset %v precedes event %d offset %v", i, evs[i].Offset, i-1, evs[i-1].Offset)
		}
	}
	if tr.Total() != 6 || tr.Dropped() != 2 {
		t.Errorf("total=%d dropped=%d, want 6 and 2", tr.Total(), tr.Dropped())
	}
}

func TestLabeledFamily(t *testing.T) {
	name := Labeled(PipelinePhaseSeconds, "phase", PhaseQuantize)
	if name != `vk_pipeline_phase_seconds{phase="quantize"}` {
		t.Fatalf("Labeled = %q", name)
	}
	if Family(name) != PipelinePhaseSeconds {
		t.Errorf("Family = %q", Family(name))
	}
	if labels(name) != `phase="quantize"` {
		t.Errorf("labels = %q", labels(name))
	}
	if Family("plain") != "plain" || labels("plain") != "" {
		t.Error("unlabeled name mishandled")
	}
}

func TestOrNop(t *testing.T) {
	if OrNop(nil) != Nop {
		t.Error("OrNop(nil) != Nop")
	}
	r := NewRegistry()
	if OrNop(r) != Recorder(r) {
		t.Error("OrNop(r) lost the recorder")
	}
	// The Nop path must accept every method without effect.
	Nop.Add("x", 1)
	Nop.Set("x", 1)
	Nop.Observe("x", 1)
	Nop.Event("x", "y")
}

// TestDeclareStandardSnapshot proves a freshly declared registry exports
// the whole schema — per-phase pipeline histograms and protocol
// retransmit counters included — before anything records into it, and
// that the Prometheus rendering is deterministic.
func TestDeclareStandardSnapshot(t *testing.T) {
	r := NewRegistry()
	DeclareStandard(r)
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two Prometheus renders of the same state differ")
	}
	out := a.String()
	for _, want := range []string{
		"vk_protocol_retransmits_total 0",
		`vk_pipeline_phase_seconds_bucket{phase="quantize",le="`,
		`vk_pipeline_phase_bits_bucket{phase="reconcile",le="`,
		`vk_transport_faults_total{kind="dropped"} 0`,
		"# TYPE vk_pipeline_phase_seconds histogram",
		"# TYPE vk_protocol_sent_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus dump missing %q", want)
		}
	}
}

func TestPrometheusHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	r.DeclareHistogram("lat", "latency", []float64{1, 2})
	r.Observe("lat", 0.5)
	r.Observe("lat", 1.5)
	r.Observe("lat", 99)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="2"} 2`,
		`lat_bucket{le="+Inf"} 3`,
		`lat_sum 101`,
		`lat_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Add("vk_protocol_sent_total", 7)
	r.Event(EvRetransmit, "w=3")
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if s.Counters["vk_protocol_sent_total"] != 7 {
		t.Errorf("counter lost in JSON: %+v", s.Counters)
	}
	if len(s.Events) != 1 || s.Events[0].Name != EvRetransmit {
		t.Errorf("events lost in JSON: %+v", s.Events)
	}
}

func TestPromFloat(t *testing.T) {
	cases := map[float64]string{
		1:            "1",
		0.25:         "0.25",
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		2.5e-3:       "0.0025",
	}
	for in, want := range cases {
		if got := promFloat(in); got != want {
			t.Errorf("promFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	DeclareStandard(r)
	r.Add(ProtocolRetransmits, 3)
	srv, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "vk_protocol_retransmits_total 3") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/vars"); !strings.Contains(out, `"vk_protocol_retransmits_total": 3`) {
		t.Errorf("/vars missing counter:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); len(out) == 0 {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestProfileHelpers(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Errorf("cpu profile not written: %v", err)
	}
	heap := filepath.Join(dir, "heap.out")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Errorf("heap profile not written: %v", err)
	}
}

// TestConcurrencySoak hammers every instrument kind from many goroutines
// while snapshots run concurrently. Under -race (scripts/test-race.sh
// runs this package in full) it proves the recorder is safe on the
// protocol and pipeline hot paths; the final counts prove no increment
// is lost.
func TestConcurrencySoak(t *testing.T) {
	r := NewRegistry(WithTraceCapacity(256))
	DeclareStandard(r)
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	// Concurrent reader: snapshots and exports must not race recording.
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
				_ = r.WritePrometheus(io.Discard)
			}
		}
	}()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			hist := Labeled(PipelinePhaseSeconds, "phase", Phases[w%len(Phases)])
			for i := 0; i < perWorker; i++ {
				r.Add(ProtocolSent, 1)
				r.Set("vk_soak_gauge", float64(i))
				r.Observe(hist, float64(i)*1e-6)
				r.Event(EvBackoff, "")
			}
		}(w)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			tr := r.Trace()
			for i := 0; i < perWorker/4; i++ {
				_ = tr.Events()
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-readerDone

	if got := r.Snapshot().Counters[ProtocolSent]; got != workers*perWorker {
		t.Errorf("sent counter = %d, want %d (lost increments)", got, workers*perWorker)
	}
	total := int64(0)
	s := r.Snapshot()
	for _, ph := range Phases {
		total += s.Histograms[Labeled(PipelinePhaseSeconds, "phase", ph)].Count
	}
	if total != workers*perWorker {
		t.Errorf("histogram samples = %d, want %d", total, workers*perWorker)
	}
	if r.Trace().Total() != workers*perWorker {
		t.Errorf("trace total = %d, want %d", r.Trace().Total(), workers*perWorker)
	}
}

// spin is a tiny unit of real work, so the benchmarks below measure the
// recorder's overhead relative to something, not against an empty loop
// the compiler could fold away.
func spin(x int) int {
	for i := 0; i < 16; i++ {
		x = x*31 + i
	}
	return x
}

var sink int

// BenchmarkBaselineNoInstrumentation is the reference: the workload with
// no recorder calls at all.
func BenchmarkBaselineNoInstrumentation(b *testing.B) {
	x := 1
	for i := 0; i < b.N; i++ {
		x = spin(x)
	}
	sink = x
}

// BenchmarkNopRecorder is the same workload through the default Nop
// path, the number the "< 2% overhead" budget in DESIGN.md §8 refers to.
func BenchmarkNopRecorder(b *testing.B) {
	r := OrNop(nil)
	x := 1
	for i := 0; i < b.N; i++ {
		x = spin(x)
		r.Add(ProtocolSent, 1)
		r.Observe(ProtocolRoundSeconds, 1e-3)
	}
	sink = x
}

// BenchmarkRegistryRecorder is the live path: atomic counter + histogram.
func BenchmarkRegistryRecorder(b *testing.B) {
	r := NewRegistry()
	DeclareStandard(r)
	x := 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = spin(x)
		r.Add(ProtocolSent, 1)
		r.Observe(ProtocolRoundSeconds, 1e-3)
	}
	sink = x
}

func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer(DefaultTraceCap)
	for i := 0; i < b.N; i++ {
		tr.Record(EvRetransmit, "")
	}
}
