package obs

import (
	"sync"
	"time"
)

// DefaultTraceCap is the event ring size NewRegistry uses.
const DefaultTraceCap = 4096

// TraceEvent is one recorded lifecycle event.
type TraceEvent struct {
	// Seq is the event's global sequence number (total events recorded
	// before it); gaps after a wrap tell the reader how much was lost.
	Seq uint64
	// Offset is the monotonic time since the tracer started.
	Offset time.Duration
	// Name identifies the event kind (see the Ev* taxonomy in names.go).
	Name string
	// Detail is an optional free-form annotation.
	Detail string
}

// Tracer is a bounded ring buffer of trace events. Recording is O(1),
// never allocates beyond the fixed ring, and never blocks on a full
// buffer — the oldest events are overwritten instead, which is the only
// behavior a hot path can afford.
type Tracer struct {
	start time.Time

	mu    sync.Mutex
	ring  []TraceEvent
	total uint64
}

// NewTracer builds a tracer holding the last capacity events (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{start: time.Now(), ring: make([]TraceEvent, capacity)}
}

// Record appends one event, overwriting the oldest when full. The
// timestamp is the monotonic offset from the tracer's start, so event
// spacing is immune to wall-clock adjustments.
func (t *Tracer) Record(name, detail string) {
	off := time.Since(t.start)
	t.mu.Lock()
	t.ring[t.total%uint64(len(t.ring))] = TraceEvent{
		Seq: t.total, Offset: off, Name: name, Detail: detail,
	}
	t.total++
	t.mu.Unlock()
}

// Events returns the buffered events, oldest first.
func (t *Tracer) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	size := uint64(len(t.ring))
	if n > size {
		n = size
	}
	out := make([]TraceEvent, 0, n)
	first := t.total - n
	for i := first; i < t.total; i++ {
		out = append(out, t.ring[i%size])
	}
	return out
}

// Total returns how many events were ever recorded (including
// overwritten ones).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if size := uint64(len(t.ring)); t.total > size {
		return t.total - size
	}
	return 0
}
