package vehiclekey

import (
	"bytes"
	"errors"
	"log"
	"strings"
	"testing"
)

// TestOptionsEquivalence is the API-compat contract: the functional-
// options path must produce a session indistinguishable from the legacy
// struct path for the same effective configuration — identical keys from
// the same seed.
func TestOptionsEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two models")
	}
	legacy, err := Setup(Options{Seed: 7, TrainingWindows: 160, TrainingEpochs: 12})
	if err != nil {
		t.Fatal(err)
	}
	fluent, err := SetupWith(Options{},
		WithSeed(7), WithTrainingWindows(160), WithTrainingEpochs(12))
	if err != nil {
		t.Fatal(err)
	}
	k1, m1, err := legacy.GenerateKeys(2)
	if err != nil {
		t.Fatal(err)
	}
	k2, m2, err := fluent.GenerateKeys(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(k1) != len(k2) {
		t.Fatalf("key counts differ: %d vs %d", len(k1), len(k2))
	}
	for i := range k1 {
		if !bytes.Equal(k1[i].Bits, k2[i].Bits) || k1[i].Agreed != k2[i].Agreed {
			t.Errorf("key %d differs between struct and options paths", i)
		}
	}
	if m1 != m2 {
		t.Errorf("metrics differ: %+v vs %+v", m1, m2)
	}
}

// TestOptionSetters pins each Option to its Options field.
func TestOptionSetters(t *testing.T) {
	var o Options
	reg := NewMetricsRegistry()
	logger := log.New(&bytes.Buffer{}, "", 0)
	obsv := ObserverFuncs{}
	for _, opt := range []Option{
		WithEnvironment(Rural), WithLink(V2V), WithSpeed(80), WithSeed(9),
		WithTrainingWindows(100), WithTrainingEpochs(5),
		WithSystemConfig(SystemConfig{SeqLen: 16}),
		WithRecorder(reg), WithLogger(logger), WithObserver(obsv),
	} {
		opt(&o)
	}
	if o.Environment != Rural || o.Link != V2V || o.SpeedKmh != 80 || o.Seed != 9 {
		t.Errorf("scenario options not applied: %+v", o)
	}
	if o.TrainingWindows != 100 || o.TrainingEpochs != 5 || o.System.SeqLen != 16 {
		t.Errorf("training options not applied: %+v", o)
	}
	if o.Recorder != Recorder(reg) || o.Logger != logger || o.Observer == nil {
		t.Error("hook options not applied")
	}
}

// TestRecorderObserverLogger wires every hook through a real session and
// checks each fired: metrics counters advanced, the observer saw the
// lifecycle, the logger wrote progress lines.
func TestRecorderObserverLogger(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	reg := NewMetricsRegistry()
	var logBuf bytes.Buffer
	trained := 0
	var seen []Key
	session, err := SetupWith(quickOptions(5),
		WithRecorder(reg),
		WithLogger(log.New(&logBuf, "", 0)),
		WithObserver(ObserverFuncs{
			OnTrained: func(seed int64, epochs int) { trained++ },
			OnKey:     func(k Key) { seen = append(seen, k) },
		}))
	if err != nil {
		t.Fatal(err)
	}
	if trained != 1 {
		t.Errorf("SessionTrained fired %d times, want 1", trained)
	}
	keys, _, err := session.GenerateKeys(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(keys) {
		t.Errorf("observer saw %d keys, session returned %d", len(seen), len(keys))
	}
	s := reg.Snapshot()
	if got := s.Counters["vk_session_keys_total"]; got != int64(len(keys)) {
		t.Errorf("vk_session_keys_total = %d, want %d", got, len(keys))
	}
	// The pipeline ran through the instrumented System, so phase
	// histograms must hold samples.
	if s.Histograms[`vk_pipeline_phase_seconds{phase="quantize"}`].Count == 0 {
		t.Error("no quantize-phase samples recorded")
	}
	if !strings.Contains(logBuf.String(), "trained") || !strings.Contains(logBuf.String(), "key(s)") {
		t.Errorf("logger missed progress lines:\n%s", logBuf.String())
	}
}

// TestErrorReexports proves the public sentinels and RoundError work with
// errors.Is / errors.As through the re-exported names.
func TestErrorReexports(t *testing.T) {
	err := error(&RoundError{Round: 3, Phase: "confirm", Err: ErrPeerTimeout})
	if !errors.Is(err, ErrPeerTimeout) {
		t.Error("errors.Is(RoundError, ErrPeerTimeout) = false")
	}
	if errors.Is(err, ErrConfirmFailed) {
		t.Error("RoundError wrongly matches ErrConfirmFailed")
	}
	var re *RoundError
	if !errors.As(err, &re) || re.Round != 3 || re.Phase != "confirm" {
		t.Errorf("errors.As lost fields: %+v", re)
	}
	if !strings.Contains(err.Error(), "round 3") {
		t.Errorf("message lacks round: %q", err.Error())
	}
}
