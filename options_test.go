package vehiclekey

import (
	"bytes"
	"errors"
	"log"
	"strings"
	"testing"
)

// TestOptionsEquivalence is the API-compat contract: the functional-
// options path must produce a session indistinguishable from the legacy
// struct path for the same effective configuration — identical keys from
// the same seed.
func TestOptionsEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two models")
	}
	legacy, err := Setup(Options{Seed: 7, TrainingWindows: 160, TrainingEpochs: 12})
	if err != nil {
		t.Fatal(err)
	}
	fluent, err := SetupWith(Options{},
		WithSeed(7), WithTrainingWindows(160), WithTrainingEpochs(12))
	if err != nil {
		t.Fatal(err)
	}
	k1, m1, err := legacy.GenerateKeys(2)
	if err != nil {
		t.Fatal(err)
	}
	k2, m2, err := fluent.GenerateKeys(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(k1) != len(k2) {
		t.Fatalf("key counts differ: %d vs %d", len(k1), len(k2))
	}
	for i := range k1 {
		if !bytes.Equal(k1[i].Bits, k2[i].Bits) || k1[i].Agreed != k2[i].Agreed {
			t.Errorf("key %d differs between struct and options paths", i)
		}
	}
	if m1 != m2 {
		t.Errorf("metrics differ: %+v vs %+v", m1, m2)
	}
}

// TestOptionSetters pins each Option to its Options field.
func TestOptionSetters(t *testing.T) {
	var o Options
	reg := NewMetricsRegistry()
	logger := log.New(&bytes.Buffer{}, "", 0)
	obsv := ObserverFuncs{}
	for _, opt := range []Option{
		WithEnvironment(Rural), WithLink(V2V), WithSpeed(80), WithSeed(9),
		WithTrainingWindows(100), WithTrainingEpochs(5),
		WithSystemConfig(SystemConfig{SeqLen: 16}),
		WithRecorder(reg), WithLogger(logger), WithObserver(obsv),
		WithMedium(MediumConfig{Channels: 4}),
	} {
		opt(&o)
	}
	if o.Medium == nil || o.Medium.Channels != 4 {
		t.Errorf("WithMedium not applied: %+v", o.Medium)
	}
	if o.Environment != Rural || o.Link != V2V || o.SpeedKmh != 80 || o.Seed != 9 {
		t.Errorf("scenario options not applied: %+v", o)
	}
	if o.TrainingWindows != 100 || o.TrainingEpochs != 5 || o.System.SeqLen != 16 {
		t.Errorf("training options not applied: %+v", o)
	}
	if o.Recorder != Recorder(reg) || o.Logger != logger || o.Observer == nil {
		t.Error("hook options not applied")
	}
}

// TestRecorderObserverLogger wires every hook through a real session and
// checks each fired: metrics counters advanced, the observer saw the
// lifecycle, the logger wrote progress lines.
func TestRecorderObserverLogger(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	reg := NewMetricsRegistry()
	var logBuf bytes.Buffer
	trained := 0
	var seen []Key
	session, err := SetupWith(quickOptions(5),
		WithRecorder(reg),
		WithLogger(log.New(&logBuf, "", 0)),
		WithObserver(ObserverFuncs{
			OnTrained: func(seed int64, epochs int) { trained++ },
			OnKey:     func(k Key) { seen = append(seen, k) },
		}))
	if err != nil {
		t.Fatal(err)
	}
	if trained != 1 {
		t.Errorf("SessionTrained fired %d times, want 1", trained)
	}
	keys, _, err := session.GenerateKeys(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(keys) {
		t.Errorf("observer saw %d keys, session returned %d", len(seen), len(keys))
	}
	s := reg.Snapshot()
	if got := s.Counters["vk_session_keys_total"]; got != int64(len(keys)) {
		t.Errorf("vk_session_keys_total = %d, want %d", got, len(keys))
	}
	// The pipeline ran through the instrumented System, so phase
	// histograms must hold samples.
	if s.Histograms[`vk_pipeline_phase_seconds{phase="quantize"}`].Count == 0 {
		t.Error("no quantize-phase samples recorded")
	}
	if !strings.Contains(logBuf.String(), "trained") || !strings.Contains(logBuf.String(), "key(s)") {
		t.Errorf("logger missed progress lines:\n%s", logBuf.String())
	}
}

// TestErrorReexports proves the public sentinels and RoundError work with
// errors.Is / errors.As through the re-exported names.
func TestErrorReexports(t *testing.T) {
	err := error(&RoundError{Round: 3, Phase: "confirm", Err: ErrPeerTimeout})
	if !errors.Is(err, ErrPeerTimeout) {
		t.Error("errors.Is(RoundError, ErrPeerTimeout) = false")
	}
	if errors.Is(err, ErrConfirmFailed) {
		t.Error("RoundError wrongly matches ErrConfirmFailed")
	}
	var re *RoundError
	if !errors.As(err, &re) || re.Round != 3 || re.Phase != "confirm" {
		t.Errorf("errors.As lost fields: %+v", re)
	}
	if !strings.Contains(err.Error(), "round 3") {
		t.Errorf("message lacks round: %q", err.Error())
	}
}

// TestWithMediumSession checks the shared-medium public surface: the
// session owns a medium built from the (normalized) config, the medium
// seed inherits the session seed, protocol traffic flows over a link,
// and an invalid config fails Setup before any training.
func TestWithMediumSession(t *testing.T) {
	// Default (emulation) clock mode: lockstep would require every
	// endpoint driven continuously, which a plain Send-then-wait test
	// goroutine is not.
	s, err := SetupWith(Options{Seed: 9, TrainingWindows: 40, TrainingEpochs: 1},
		WithScheme("lora-key"), // training-free: keeps the test cheap
		WithMedium(MediumConfig{Channels: 2, TimeScale: 1000}))
	if err != nil {
		t.Fatal(err)
	}
	m := s.Medium()
	if m == nil {
		t.Fatal("Session.Medium() = nil with Options.Medium set")
	}
	if got := m.Config(); got.Seed != 9 || got.Channels != 2 || got.CaptureDB != 6 {
		t.Errorf("medium config not normalized/inherited: %+v", got)
	}
	a, b, err := m.Link("veh-0")
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	done := make(chan error, 1)
	go func() {
		msg, err := b.Recv()
		got = msg
		done <- err
		_ = b.Close()
	}()
	if err := a.Send([]byte("probe")); err != nil {
		t.Fatalf("send over session medium: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("recv over session medium: %v", err)
	}
	if string(got) != "probe" {
		t.Errorf("recv = %q, want %q", got, "probe")
	}
	if st := m.Stats(); st.Delivered != 1 {
		t.Errorf("stats.Delivered = %d, want 1", st.Delivered)
	}
	_ = m.Close()

	if _, err := SetupWith(Options{}, WithMedium(MediumConfig{Channels: -1})); err == nil {
		t.Error("Setup accepted an invalid medium config")
	}

	pp, err := SetupWith(Options{TrainingWindows: 40, TrainingEpochs: 1}, WithScheme("lora-key"))
	if err != nil {
		t.Fatal(err)
	}
	if pp.Medium() != nil {
		t.Error("point-to-point session has a non-nil Medium()")
	}
}
