// Package vehiclekey is a reproduction of "Vehicle-Key: A Secret Key
// Establishment Scheme for LoRa-enabled IoV Communications" (Yang et al.,
// ICDCS 2022) as a self-contained Go library.
//
// It provides:
//
//   - a full simulation substrate standing in for the paper's hardware
//     testbed: a vehicular radio channel (path loss, correlated
//     shadowing, Jakes Doppler fading), the LoRa SX127x PHY timing model,
//     and register-RSSI measurement;
//   - the Vehicle-Key pipeline itself: arRSSI feature extraction, the
//     BiLSTM prediction+quantization network, guard-banded multi-bit
//     quantization, autoencoder reconciliation behind a salted Bloom
//     filter, and SHA-based privacy amplification;
//   - an interactive protocol that runs the scheme between two endpoints
//     over in-memory or UDP transports, producing confirmed AES-128 keys;
//     the transport is treated as unreliable (LoRa): messages are
//     retransmitted with exponential backoff, duplicates and reordering
//     are tolerated, and a deterministic fault-injecting transport
//     wrapper exists for testing links at chosen loss rates;
//   - the three baselines the paper compares against, the NIST SP 800-22
//     randomness battery, and runners that regenerate every figure and
//     table of the paper's evaluation (see internal/exp and cmd/vkbench).
//
// Quickstart:
//
//	session, err := vehiclekey.Setup(vehiclekey.Options{})
//	...
//	keys, metrics, err := session.GenerateKeys(8)
package vehiclekey

import (
	"fmt"
	"io"
	"log"

	// Blank import: registers the lora-key/han/gao scheme builders so
	// Options.Scheme / WithScheme can name them.
	_ "repro/internal/baselines"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/lora"
	"repro/internal/nist"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Environment selects the propagation preset.
type Environment = channel.Environment

// LinkType distinguishes V2V from V2I links.
type LinkType = channel.LinkType

// Propagation and link-type constants.
const (
	Urban = channel.Urban
	Rural = channel.Rural
	V2V   = channel.V2V
	V2I   = channel.V2I
)

// Metrics re-exports the pipeline quality metrics.
type Metrics = core.Metrics

// Key is one established 128-bit session key with its round diagnostics.
type Key struct {
	Bits      []byte // 16-byte AES-128 key (identical on both sides when Agreed)
	Agreed    bool   // both sides ended with the same key
	Agreement float64
}

// Options configures Setup. The zero value reproduces the paper's default
// configuration in the V2I-urban scenario.
type Options struct {
	Environment Environment // Urban (default) or Rural
	Link        LinkType    // V2I (default) or V2V
	SpeedKmh    float64     // vehicle speed, default 50
	Seed        int64       // deterministic seed, default 1

	TrainingWindows int // probing windows used for training, default 500
	TrainingEpochs  int // predictor epochs, default 30

	// Scheme selects the registered key-generation scheme driving the
	// session's pipeline stages: "vehicle-key" (default when empty) or
	// any name in Schemes() ("lora-key", "han", "gao"). Every scheme runs
	// through the same quantize→reconcile→amplify path; only the stage
	// implementations differ.
	Scheme string

	System core.Config // advanced pipeline knobs; zero values take defaults

	// Medium, when non-nil, attaches a shared LoRa medium to the session:
	// the config is normalized and validated during Setup and the built
	// Medium is available from Session.Medium, with its MAC counters
	// routed into Recorder. Nil (the default) keeps the session
	// point-to-point, as in the paper. See WithMedium.
	Medium *MediumConfig

	// Recorder receives the session's metrics (nil: no recording). See
	// WithRecorder; recording never influences results.
	Recorder Recorder
	// Logger receives coarse progress lines (nil: silent).
	Logger *log.Logger
	// Observer receives lifecycle callbacks (nil: none).
	Observer SessionObserver
}

// Session is a trained Vehicle-Key deployment bound to one simulated
// link: it can generate keys, evaluate agreement metrics, play the
// attacker, and export its trained models.
type Session struct {
	opts   Options
	sys    *core.System
	test   *trace.Dataset
	src    *rng.Source
	cursor int
	rec    obs.Recorder
	medium *Medium
}

// Setup builds the simulated link, collects training data, and trains the
// prediction and reconciliation models.
//
// Deprecated: Setup is the legacy struct-only path, kept for
// compatibility. New code should call SetupWith, which accepts the same
// Options plus functional options (WithScheme, WithFastPath, WithMedium,
// ...) and behaves identically for equal effective configurations.
func Setup(opts Options) (*Session, error) { return SetupWith(opts) }

// SetupWith is Setup with functional options applied over the base
// struct, in order. SetupWith(Options{}, WithSeed(7)) is equivalent to
// Setup(Options{Seed: 7}).
func SetupWith(opts Options, extra ...Option) (*Session, error) {
	for _, o := range extra {
		if o != nil {
			o(&opts)
		}
	}
	if opts.Environment == 0 {
		opts.Environment = Urban
	}
	if opts.Link == 0 {
		opts.Link = V2I
	}
	if opts.SpeedKmh == 0 {
		opts.SpeedKmh = 50
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.TrainingWindows == 0 {
		opts.TrainingWindows = 500
	}
	if opts.TrainingEpochs == 0 {
		opts.TrainingEpochs = 30
	}
	opts.System.Normalize()

	// The shared-medium config, like the scheme name below, must fail
	// before the expensive builds. The medium itself is cheap to create:
	// its virtual clock only advances while endpoints are in flight.
	var medium *Medium
	if opts.Medium != nil {
		mc := *opts.Medium
		if mc.Seed == 0 {
			mc.Seed = opts.Seed // inherit the session seed unless pinned
		}
		if mc.Recorder == nil {
			mc.Recorder = opts.Recorder
		}
		m, err := lora.NewMedium(mc) // normalizes and validates
		if err != nil {
			return nil, fmt.Errorf("vehiclekey: medium: %w", err)
		}
		medium = m
		norm := m.Config()
		opts.Medium = &norm
	}

	// A bad scheme name must fail before the dataset and model builds,
	// not after: the registry lookup is free, the builds are not. The
	// authoritative (randomness-consuming) construction still happens in
	// NewScheme below, in its original derivation order.
	if !core.SchemeRegistered(opts.Scheme) {
		return nil, fmt.Errorf("vehiclekey: %w", &core.ErrUnknownScheme{Name: opts.Scheme, Known: core.SchemeNames()})
	}

	sc := trace.NewScenario(opts.Environment, opts.Link)
	sc.SpeedAKmh = opts.SpeedKmh
	ds, err := trace.Build(sc, opts.Seed, opts.TrainingWindows, opts.System.SeqLen, trace.DefaultExtract())
	if err != nil {
		return nil, fmt.Errorf("vehiclekey: %w", err)
	}
	src := rng.New(opts.Seed + 1)
	train, _, test := ds.Split(0.75, 0.05, src.Derive("split"))
	sys, err := core.NewScheme(opts.Scheme, opts.System, src.Derive("sys"))
	if err != nil {
		return nil, fmt.Errorf("vehiclekey: %w", err)
	}
	rec := obs.OrNop(opts.Recorder)
	sys.SetRecorder(rec)
	if _, err := sys.Train(train, opts.TrainingEpochs, src.Derive("train")); err != nil {
		return nil, fmt.Errorf("vehiclekey: train: %w", err)
	}
	if opts.Logger != nil {
		opts.Logger.Printf("vehiclekey: trained (seed=%d epochs=%d windows=%d)",
			opts.Seed, opts.TrainingEpochs, opts.TrainingWindows)
	}
	if opts.Observer != nil {
		opts.Observer.SessionTrained(opts.Seed, opts.TrainingEpochs)
	}
	return &Session{opts: opts, sys: sys, test: test, src: src, rec: rec, medium: medium}, nil
}

// System exposes the trained pipeline for advanced use (protocol nodes,
// profiling).
func (s *Session) System() *core.System { return s.sys }

// Medium returns the shared LoRa medium built from Options.Medium, or
// nil for a point-to-point session. Its Link / Listen / Dial endpoints
// carry protocol traffic through the contended channel model, and its
// Stats expose the MAC counters (also recorded into the session's
// Recorder).
func (s *Session) Medium() *Medium { return s.medium }

// Schemes lists the registered scheme names accepted by Options.Scheme
// and WithScheme, sorted.
func Schemes() []string { return core.SchemeNames() }

// Windows returns up to n held-out aligned measurement windows
// (Alice side, Bob side) for driving the interactive protocol.
func (s *Session) Windows(n int) (alice, bob [][]float64) {
	for i := 0; i < n && i < len(s.test.Samples); i++ {
		alice = append(alice, s.test.Samples[i].Alice)
		bob = append(bob, s.test.Samples[i].Bob)
	}
	return alice, bob
}

// GenerateKeys drives probing rounds until n keys are produced (or the
// held-out channel data runs out) and returns them with the aggregate
// metrics.
func (s *Session) GenerateKeys(n int) ([]Key, Metrics, error) {
	ks := s.sys.NewKeyStream([]byte(fmt.Sprintf("session-%d", s.opts.Seed)))
	var keys []Key
	var results []core.KeyResult
	var probed float64
	for s.cursor < len(s.test.Samples) && len(keys) < n {
		smp := s.test.Samples[s.cursor]
		s.cursor++
		probed += smp.Duration
		rs, err := ks.Push(smp)
		if err != nil {
			return nil, Metrics{}, fmt.Errorf("vehiclekey: %w", err)
		}
		for _, r := range rs {
			k := Key{Bits: r.BobKey, Agreed: r.Exact, Agreement: r.PostAgreement}
			keys = append(keys, k)
			results = append(results, r)
			s.rec.Add(obs.SessionKeys, 1)
			if k.Agreed {
				s.rec.Add(obs.SessionKeysAgreed, 1)
			}
			if s.opts.Observer != nil {
				s.opts.Observer.KeyGenerated(k)
			}
		}
	}
	if s.opts.Logger != nil {
		s.opts.Logger.Printf("vehiclekey: generated %d key(s)", len(keys))
	}
	return keys, core.Aggregate(results, probed), nil
}

// Evaluate measures agreement metrics over the full held-out set.
func (s *Session) Evaluate() (Metrics, error) {
	return s.sys.Evaluate(s.test, []byte("evaluate"))
}

// EvaluateAttack measures an attacker's agreement: imitate=true for an
// Eve tailing the vehicle, false for one parked near the infrastructure.
func (s *Session) EvaluateAttack(imitate bool) (Metrics, error) {
	return s.sys.EvaluateEve(s.test, imitate, []byte("attack"))
}

// RandomnessReport runs the NIST battery over a stream of generated keys.
type RandomnessReport struct {
	Results []nist.Result
	Bits    int
}

// CheckRandomness generates keys until it has enough material and runs
// the Table II battery.
func (s *Session) CheckRandomness(minBits int) (RandomnessReport, error) {
	if minBits < nist.MinBits {
		minBits = 4096
	}
	ks := s.sys.NewKeyStream([]byte("nist"))
	var stream []byte
	for _, smp := range s.test.Samples {
		rs, err := ks.Push(smp)
		if err != nil {
			return RandomnessReport{}, err
		}
		for _, r := range rs {
			stream = append(stream, unpackKey(r.BobKey)...)
		}
		if len(stream) >= minBits {
			break
		}
	}
	results, err := nist.Battery(stream)
	if err != nil {
		return RandomnessReport{}, fmt.Errorf("vehiclekey: %w", err)
	}
	return RandomnessReport{Results: results, Bits: len(stream)}, nil
}

func unpackKey(key []byte) []byte {
	out := make([]byte, 0, len(key)*8)
	for _, b := range key {
		for i := 7; i >= 0; i-- {
			out = append(out, b>>uint(i)&1)
		}
	}
	return out
}

// SaveModel writes the trained predictor and reconciler weights.
func (s *Session) SaveModel(w io.Writer) error { return s.sys.Save(w) }

// LoadModel restores weights previously saved with SaveModel into this
// session's (same-configuration) models.
func (s *Session) LoadModel(r io.Reader) error { return s.sys.Load(r) }
