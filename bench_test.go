// Benchmarks that regenerate each table and figure of the paper's
// evaluation (via internal/exp) plus micro-benchmarks of the pipeline's
// hot components. Run them all with:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark reports the regenerated rows through -v logs
// of cmd/vkbench; here the interest is wall-clock cost of regeneration at
// the quick configuration.
package vehiclekey

import (
	"flag"
	"sync"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/lora"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/protocol"
	"repro/internal/reconcile"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/transport"
)

// expParallel is the experiment engine's worker count for the benchmarks
// below: `go test -bench=. -args -j 8`. 0 uses every core; 1 benchmarks
// the serial baseline. Reports are identical either way — only the
// wall-clock changes.
var expParallel = flag.Int("j", 0, "exp.RunConfig.Parallelism for experiment benchmarks (0 = all cores)")

func expConfig() exp.RunConfig {
	cfg := exp.Quick()
	cfg.Parallelism = *expParallel
	return cfg
}

func runExp(b *testing.B, id string) {
	b.Helper()
	cfg := expConfig()
	for i := 0; i < b.N; i++ {
		rep, err := exp.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatalf("%s: empty report", id)
		}
	}
}

// One benchmark per paper figure/table (DESIGN.md experiment index).

func BenchmarkFig02aCorrelationVsDataRate(b *testing.B) { runExp(b, "fig2a") }
func BenchmarkFig02bCorrelationVsSpeed(b *testing.B)    { runExp(b, "fig2b") }
func BenchmarkFig03PRSSIvsRRSSI(b *testing.B)           { runExp(b, "fig3") }
func BenchmarkFig04RegisterRSSITrace(b *testing.B)      { runExp(b, "fig4") }
func BenchmarkFig09ArRSSIWindow(b *testing.B)           { runExp(b, "fig9") }
func BenchmarkFig10Prediction(b *testing.B)             { runExp(b, "fig10") }
func BenchmarkFig11Reconciliation(b *testing.B)         { runExp(b, "fig11") }
func BenchmarkTab1DevicesSpeeds(b *testing.B)           { runExp(b, "tab1") }
func BenchmarkFig12AgreementComparison(b *testing.B)    { runExp(b, "fig12") }
func BenchmarkFig13GenerationRate(b *testing.B)         { runExp(b, "fig13") }
func BenchmarkFig14Transfer(b *testing.B)               { runExp(b, "fig14") }
func BenchmarkFig15Security(b *testing.B)               { runExp(b, "fig15") }
func BenchmarkFig16EveTrace(b *testing.B)               { runExp(b, "fig16") }
func BenchmarkTab2NIST(b *testing.B)                    { runExp(b, "tab2") }
func BenchmarkTab3Power(b *testing.B)                   { runExp(b, "tab3") }
func BenchmarkFig17PowerTrace(b *testing.B)             { runExp(b, "fig17") }

// Design-choice ablations called out in DESIGN.md.

func BenchmarkAblationTheta(b *testing.B) { runExp(b, "ablate-theta") }
func BenchmarkAblationBloom(b *testing.B) { runExp(b, "ablate-bloom") }

// BenchmarkRunAllPrelim measures the cross-experiment concurrency of
// exp.RunAll over the training-free runners (the trained ones would
// mostly benchmark the cache). Compare `-args -j 1` with `-args -j 8`.
func BenchmarkRunAllPrelim(b *testing.B) {
	cfg := expConfig()
	ids := []string{"fig2a", "fig2b", "fig3", "fig4", "fig9", "fig16"}
	for i := 0; i < b.N; i++ {
		reps, err := exp.RunAll(ids, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(reps) != len(ids) {
			b.Fatalf("got %d reports, want %d", len(reps), len(ids))
		}
	}
}

// Micro-benchmarks of the pipeline's hot paths.

func BenchmarkPredictorForward(b *testing.B) {
	src := rng.New(1)
	// The paper's full-size model: 32 steps, 128 hidden units.
	p := nn.NewPredictor(nn.PredictorConfig{SeqLen: 32, Hidden: 128, Bits: 64, Theta: 0.9}, src)
	seq := make([]float64, 32)
	for i := range seq {
		seq[i] = src.Normal(0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(seq)
	}
}

func BenchmarkPredictorTrainStep(b *testing.B) {
	src := rng.New(2)
	p := nn.NewPredictor(nn.PredictorConfig{SeqLen: 32, Hidden: 32, Bits: 64, Theta: 0.9}, src)
	seq := make([]float64, 32)
	bits := make([]byte, 64)
	for i := range seq {
		seq[i] = src.Normal(0, 1)
		bits[2*i] = byte(i % 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.TrainStep(seq, seq, bits, nil)
	}
}

func BenchmarkAEReconcile(b *testing.B) {
	ae := reconcile.TrainAE(reconcile.AEConfig{KeyBits: 64, CodeDim: 32, DecoderUnits: 16}, 4, 100, rng.New(3))
	src := rng.New(4)
	kb := src.Bits(64)
	ka := make([]byte, 64)
	copy(ka, kb)
	ka[3] ^= 1
	ka[40] ^= 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ae.Reconcile(ka, kb, []byte("bench")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSISTA(b *testing.B) {
	src := rng.New(5)
	kb := src.Bits(64)
	ka := make([]byte, 64)
	copy(ka, kb)
	ka[10] ^= 1
	ka[50] ^= 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reconcile.CSISTA(ka, kb, reconcile.DefaultCSConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCascade(b *testing.B) {
	src := rng.New(6)
	kb := src.Bits(128)
	ka := make([]byte, 128)
	copy(ka, kb)
	ka[7] ^= 1
	ka[99] ^= 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reconcile.Cascade(ka, kb, reconcile.DefaultCascadeConfig(), src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChannelGain(b *testing.B) {
	m := channel.NewModel(channel.DefaultConfig(channel.Urban, channel.V2V), rng.New(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.GainDB(float64(i) * 1e-3)
	}
}

func BenchmarkProbeExchange(b *testing.B) {
	col := trace.NewCollector(trace.NewScenario(channel.Urban, channel.V2I), 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.Run(1)
	}
}

func BenchmarkLoRaAirtime(b *testing.B) {
	p := lora.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Airtime()
	}
}

// Protocol round benchmarks: one full interactive key establishment
// (all windows, reconciliation, confirmation, DONE handshake) over the
// in-memory transport. The session is trained once and shared.

var (
	benchProtoOnce    sync.Once
	benchProtoSession *Session
	benchProtoErr     error
)

func benchSession(b *testing.B) *Session {
	b.Helper()
	benchProtoOnce.Do(func() {
		benchProtoSession, benchProtoErr = Setup(Options{
			Seed:            11,
			TrainingWindows: 160,
			TrainingEpochs:  10,
		})
	})
	if benchProtoErr != nil {
		b.Fatal(benchProtoErr)
	}
	return benchProtoSession
}

func runProtoBench(b *testing.B, cfg transport.FaultConfig) {
	s := benchSession(b)
	aliceWin, bobWin := s.Windows(8)
	policy := protocol.RetryPolicy{
		Timeout: 20 * time.Millisecond, MaxTimeout: 160 * time.Millisecond,
		Backoff: 2, MaxRetries: 8,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ca, cb := transport.FaultyPair(cfg, rng.New(int64(100+i)))
		alice := protocol.NewNode(s.System(), ca, "bench", protocol.WithRetryPolicy(policy))
		bob := protocol.NewNode(s.System(), cb, "bench", protocol.WithRetryPolicy(policy))
		var wg sync.WaitGroup
		wg.Add(1)
		var bobOut []protocol.KeyOutcome
		var bobErr error
		go func() {
			defer wg.Done()
			bobOut, bobErr = bob.RunBob(bobWin)
		}()
		aliceOut, aliceErr := alice.RunAlice(aliceWin)
		wg.Wait()
		ca.Close()
		cb.Close()
		if aliceErr != nil || bobErr != nil {
			b.Fatalf("alice=%v bob=%v", aliceErr, bobErr)
		}
		if len(aliceOut) == 0 || len(bobOut) == 0 {
			b.Fatal("protocol produced no outcomes")
		}
	}
}

func BenchmarkProtocolRound(b *testing.B) {
	runProtoBench(b, transport.FaultConfig{})
}

func BenchmarkProtocolRoundLossy(b *testing.B) {
	runProtoBench(b, transport.FaultConfig{Drop: 0.10, Reorder: 0.10})
}

// BenchmarkScheme runs every registered scheme — Vehicle-Key and the
// three baselines — through the same stream evaluation over one shared
// collected trace, so per-scheme quantize+reconcile cost is directly
// comparable. CI's bench-smoke job tracks the BenchmarkScheme/* rows
// across PRs as the cross-scheme perf trajectory.
func BenchmarkScheme(b *testing.B) {
	col := trace.NewCollector(trace.NewScenario(channel.Urban, channel.V2I), 12)
	ex := col.Run(640)
	aliceS, bobS := trace.PRSSI(ex)
	var dur float64
	for _, e := range ex {
		dur += e.Duration
	}
	for _, name := range Schemes() {
		b.Run(name, func(b *testing.B) {
			sys, err := core.NewScheme(name, core.DefaultConfig(), rng.New(13))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sr, err := pipeline.EvaluateStream(sys.Stages, aliceS, bobS, dur)
				if err != nil {
					b.Fatal(err)
				}
				if sr.Blocks == 0 {
					b.Fatal("stream evaluation produced no blocks")
				}
			}
		})
	}
}

// Fast-path A/B over the predictor inference stage — the component the
// -fastpath flag switches. The three systems are trained identically:
// training always runs the float64 reference path, so with a shared
// seed the weights agree byte for byte across modes, and the int8
// system additionally snapshots its calibration during Fit. Two
// sub-benchmark families:
//
//	forward/<mode> — the raw mode-dispatched forward (memo bypassed):
//	                 off = per-step loops, gemm = batched MatMulTBias
//	                 kernels, int8 = quantized integer kernels.
//	predict/<mode> — the System-level path Alice's protocol rounds
//	                 use, cycling a fixed window set so the
//	                 fingerprint memo serves warm calls (off carries
//	                 no memo by design — it is the uncached reference).
//
// CI's bench-smoke job runs this family as the off→gemm→int8
// trajectory alongside BenchmarkScheme/vehicle-key.

var (
	benchFastPathOnce sync.Once
	benchFastPathSys  map[string]*core.System
	benchFastPathWins [][]float64
	benchFastPathErr  error
)

func benchFastPathSystems(b *testing.B) (map[string]*core.System, [][]float64) {
	b.Helper()
	benchFastPathOnce.Do(func() {
		sc := trace.NewScenario(channel.Urban, channel.V2I)
		ds, err := trace.Build(sc, 13, 80, 32, trace.DefaultExtract())
		if err != nil {
			benchFastPathErr = err
			return
		}
		benchFastPathSys = make(map[string]*core.System)
		for _, mode := range []string{core.FastPathOff, core.FastPathGEMM, core.FastPathInt8} {
			cfg := core.DefaultConfig()
			cfg.FastPath = mode
			src := rng.New(13)
			sys := core.New(cfg, src.Derive("sys"))
			train, _, test := ds.Split(0.75, 0.05, src.Derive("split"))
			if _, err := sys.Train(train, 2, src.Derive("train")); err != nil {
				benchFastPathErr = err
				return
			}
			benchFastPathSys[mode] = sys
			if benchFastPathWins == nil {
				for _, smp := range test.Samples {
					benchFastPathWins = append(benchFastPathWins, smp.Alice)
				}
			}
		}
	})
	if benchFastPathErr != nil {
		b.Fatal(benchFastPathErr)
	}
	if len(benchFastPathWins) == 0 {
		b.Fatal("fast-path benchmark: empty test split")
	}
	return benchFastPathSys, benchFastPathWins
}

func BenchmarkSchemeFastPath(b *testing.B) {
	systems, wins := benchFastPathSystems(b)
	modes := []string{core.FastPathOff, core.FastPathGEMM, core.FastPathInt8}
	for _, mode := range modes {
		sys := systems[mode]
		b.Run("forward/"+mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := sys.Stages.Predictor.Predict(wins[i%len(wins)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, mode := range modes {
		sys := systems[mode]
		kept := []int{0}
		b.Run("predict/"+mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if bits := sys.AliceBitsAt(wins[i%len(wins)], kept); bits == nil {
					b.Fatal("AliceBitsAt failed")
				}
			}
		})
	}
}

func BenchmarkKeyStreamPush(b *testing.B) {
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	ds, err := trace.Build(sc, 9, 40, 32, trace.DefaultExtract())
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(10)
	sys := core.New(core.DefaultConfig(), src)
	ks := sys.NewKeyStream([]byte("bench"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ks.Push(ds.Samples[i%len(ds.Samples)]); err != nil {
			b.Fatal(err)
		}
	}
}
