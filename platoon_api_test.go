package vehiclekey

import "testing"

// TestRunPlatoonMem drives the public platoon API end to end over the
// default in-memory endpoint: everyone establishes, the leaver departs
// after epoch 1, and the survivors agree on the epoch-2 key.
func TestRunPlatoonMem(t *testing.T) {
	opts := quickOptions(11)
	opts.Scheme = "lora-key" // training-free: the platoon run is the point
	session, err := Setup(opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := session.RunPlatoon(PlatoonConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Established) != 4 || len(rep.Failed) != 0 {
		t.Fatalf("established %v failed %v", rep.Established, rep.Failed)
	}
	if len(rep.Rekeys) != 2 || rep.FinalEpoch != 2 {
		t.Fatalf("rekeys %+v final epoch %d", rep.Rekeys, rep.FinalEpoch)
	}
	if got := len(rep.Rekeys[1].Acked); got != 3 {
		t.Fatalf("epoch 2 acked by %d of 3 survivors: %+v", got, rep.Rekeys[1])
	}
	if rep.LeavesSeen != 1 {
		t.Fatalf("leaves seen = %d", rep.LeavesSeen)
	}
	for m, d := range rep.Accepted[2] {
		if m == 1 {
			t.Fatalf("departed member 1 accepted the epoch-2 key")
		}
		if d != rep.HubDigest {
			t.Fatalf("member %d digest %s != hub %s", m, d, rep.HubDigest)
		}
	}
}

// TestRunPlatoonLeaverBounds rejects a leaver outside the platoon.
func TestRunPlatoonLeaverBounds(t *testing.T) {
	opts := quickOptions(12)
	opts.Scheme = "lora-key"
	session, err := Setup(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := session.RunPlatoon(PlatoonConfig{Members: 2, Leavers: []uint64{5}}); err == nil {
		t.Fatal("want an error for a leaver outside the platoon")
	}
}
